(* Tests for the MII machinery: MinDist, ResMII bin-packing, RecMII by
   both methods (cross-checked on random loops), and the combined MII. *)

open Ims_machine
open Ims_ir
open Ims_mii

let machine = Machine.cydra5 ()

(* s += v reduction: RecMII = fadd latency = 4 on the Cydra. *)
let reduction ?(opcode = "fadd") ?(distance = 1) m =
  let b = Builder.create m in
  let s = Builder.vreg b "s" and v = Builder.vreg b "v" in
  ignore (Builder.add b ~opcode ~dsts:[ s ] ~srcs:[ (s, distance); (v, 0) ] ());
  Builder.finish b

(* A two-op cross-iteration circuit: a -> b (distance 0), b -> a
   (distance 1): RecMII = (lat a + lat b + extra) / 1. *)
let two_op_recurrence m =
  let b = Builder.create m in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ x ] ~srcs:[ (y, 1) ] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  Builder.finish b

(* --- MinDist -------------------------------------------------------------- *)

let test_mindist_chain () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  let ddg = Builder.finish b in
  let md = Mindist.full ddg ~ii:1 in
  Alcotest.(check int) "load to fmul" 20 (Mindist.get md 1 2);
  Alcotest.(check int) "start to stop = critical path" 25
    (Mindist.get md Ddg.start (Ddg.stop ddg));
  Alcotest.(check bool) "no reverse path" true
    (Mindist.get md 2 1 = Mindist.neg_inf)

let test_mindist_diagonal_tracks_ii () =
  let ddg = reduction machine in
  (* Self circuit delay 4 distance 1: diagonal is 4 - ii at feasible IIs;
     below RecMII the max-plus closure only guarantees positivity. *)
  List.iter
    (fun ii ->
      let md = Mindist.compute ddg ~nodes:[| 1 |] ~ii in
      Alcotest.(check bool)
        (Printf.sprintf "diagonal positive at ii=%d" ii)
        true
        (Mindist.get md 1 1 > 0))
    [ 1; 2; 3 ];
  List.iter
    (fun ii ->
      let md = Mindist.compute ddg ~nodes:[| 1 |] ~ii in
      Alcotest.(check int)
        (Printf.sprintf "diagonal at ii=%d" ii)
        (4 - ii) (Mindist.get md 1 1))
    [ 4; 5; 6 ];
  let md4 = Mindist.compute ddg ~nodes:[| 1 |] ~ii:4 in
  Alcotest.(check bool) "feasible at RecMII" true (Mindist.feasible md4);
  let md3 = Mindist.compute ddg ~nodes:[| 1 |] ~ii:3 in
  Alcotest.(check bool) "infeasible below" false (Mindist.feasible md3)

let test_mindist_zero_diagonal_critical () =
  let ddg = reduction machine in
  let md = Mindist.compute ddg ~nodes:[| 1 |] ~ii:4 in
  Alcotest.(check int) "critical circuit has zero slack" 0 (Mindist.max_diagonal md)

(* --- ResMII --------------------------------------------------------------- *)

let test_resmii_empty_is_one () =
  let b = Builder.create machine in
  let ddg = Builder.finish b in
  Alcotest.(check int) "empty loop" 1 (Resmii.compute ddg)

let test_resmii_single_adder_saturation () =
  (* Five fadds on one adder: ResMII = 5. *)
  let b = Builder.create machine in
  for i = 0 to 4 do
    ignore
      (Builder.add b ~opcode:"fadd"
         ~dsts:[ Builder.vreg b (Printf.sprintf "x%d" i) ]
         ~srcs:[] ())
  done;
  Alcotest.(check int) "five fadds" 5 (Resmii.compute (Builder.finish b))

let test_resmii_two_ports () =
  (* Five loads on two memory ports: ceil(5/2) = 3. *)
  let b = Builder.create machine in
  for i = 0 to 4 do
    ignore
      (Builder.add b ~opcode:"load"
         ~dsts:[ Builder.vreg b (Printf.sprintf "x%d" i) ]
         ~srcs:[] ())
  done;
  Alcotest.(check int) "five loads, two ports" 3 (Resmii.compute (Builder.finish b))

let test_resmii_alternatives_balance () =
  (* 2 fadds (adder only) + 4 int adds (either unit): greedy should send
     the adds to the address ALUs, keeping ResMII at 2. *)
  let b = Builder.create machine in
  for i = 0 to 1 do
    ignore
      (Builder.add b ~opcode:"fadd"
         ~dsts:[ Builder.vreg b (Printf.sprintf "f%d" i) ] ~srcs:[] ())
  done;
  for i = 0 to 3 do
    ignore
      (Builder.add b ~opcode:"add"
         ~dsts:[ Builder.vreg b (Printf.sprintf "i%d" i) ] ~srcs:[] ())
  done;
  Alcotest.(check int) "alternatives balanced" 2 (Resmii.compute (Builder.finish b))

let test_resmii_divide_block () =
  (* One divide occupies the multiplier for 8 cycles. *)
  let b = Builder.create machine in
  ignore (Builder.add b ~opcode:"fdiv" ~dsts:[ Builder.vreg b "q" ] ~srcs:[] ());
  Alcotest.(check int) "divide block" 8 (Resmii.compute (Builder.finish b))

let test_usage_profile () =
  let b = Builder.create machine in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ Builder.vreg b "x" ] ~srcs:[] ());
  let profile = Resmii.usage_profile (Builder.finish b) in
  let mem = List.find (fun (n, _, _, _) -> n = "MemPort") profile in
  let _, uses, copies, bound = mem in
  Alcotest.(check (list int)) "memport row" [ 1; 2; 1 ] [ uses; copies; bound ]

(* --- RecMII --------------------------------------------------------------- *)

let test_recmii_vectorizable_is_one () =
  let b = Builder.create machine in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ Builder.vreg b "x" ] ~srcs:[] ());
  let ddg = Builder.finish b in
  Alcotest.(check int) "no recurrence" 1 (Recmii.by_mindist ddg);
  Alcotest.(check int) "circuits agree" 1 (Recmii.by_circuits ddg)

let test_recmii_reduction () =
  let ddg = reduction machine in
  Alcotest.(check int) "fadd self loop" 4 (Recmii.by_mindist ddg);
  Alcotest.(check int) "circuits agree" 4 (Recmii.by_circuits ddg)

let test_recmii_two_op_circuit () =
  let ddg = two_op_recurrence machine in
  (* fadd(4) + fmul(5) over distance 1 = 9. *)
  Alcotest.(check int) "two-op circuit" 9 (Recmii.by_mindist ddg);
  Alcotest.(check int) "circuits agree" 9 (Recmii.by_circuits ddg)

let test_recmii_distance_divides () =
  (* Same reduction but carried 2 iterations: ceil(4/2) = 2. *)
  let ddg = reduction ~distance:2 machine in
  Alcotest.(check int) "distance 2 halves" 2 (Recmii.by_mindist ddg);
  Alcotest.(check int) "circuits agree" 2 (Recmii.by_circuits ddg)

let test_recmii_feasibility () =
  let ddg = two_op_recurrence machine in
  Alcotest.(check bool) "feasible at 9" true (Recmii.feasible ddg ~ii:9);
  Alcotest.(check bool) "infeasible at 8" false (Recmii.feasible ddg ~ii:8)

let test_mii_from_skips_work_when_resmii_dominates () =
  (* ResMII 5 > RecMII 4: the production scheme must return 5 directly. *)
  let b = Builder.create machine in
  let s = Builder.vreg b "s" in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1) ] ());
  for i = 0 to 3 do
    ignore
      (Builder.add b ~opcode:"fadd"
         ~dsts:[ Builder.vreg b (Printf.sprintf "x%d" i) ] ~srcs:[] ())
  done;
  let ddg = Builder.finish b in
  Alcotest.(check int) "mii via production scheme" 5
    (Recmii.mii_from ddg ~resmii:5)

(* --- Combined MII ---------------------------------------------------------- *)

let test_mii_max_of_both () =
  let ddg = two_op_recurrence machine in
  let m = Mii.compute ddg in
  Alcotest.(check int) "resmii" 1 m.Mii.resmii;
  Alcotest.(check int) "recmii" 9 m.Mii.recmii;
  Alcotest.(check int) "mii" 9 m.Mii.mii

let test_mii_fast_equals_full () =
  let ddg = two_op_recurrence machine in
  Alcotest.(check int) "fast = full" (Mii.compute ddg).Mii.mii
    (Mii.compute_fast ddg)

let test_schedule_length_lower_bound () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  let ddg = Builder.finish b in
  Alcotest.(check int) "critical path dominates" 25
    (Mii.schedule_length_lower_bound ddg ~ii:1 ~acyclic_length:10);
  Alcotest.(check int) "acyclic length dominates" 40
    (Mii.schedule_length_lower_bound ddg ~ii:1 ~acyclic_length:40)

(* Property: both RecMII methods agree on random loops (the Cydra 5
   compiler's enumeration versus Huff's MinDist search). *)
let prop_recmii_methods_agree =
  QCheck.Test.make ~count:150 ~name:"recmii: circuits = mindist"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed; 7 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      Recmii.by_mindist ddg = Recmii.by_circuits ~limit:20000 ddg)

(* Property: MII from the production scheme equals max(ResMII, RecMII). *)
let prop_mii_fast_consistent =
  QCheck.Test.make ~count:100 ~name:"mii: production scheme = max(res, rec)"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed; 13 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      let m = Mii.compute ddg in
      Mii.compute_fast ddg = m.Mii.mii && m.Mii.mii = max m.Mii.resmii m.Mii.recmii)

(* Property: the incremental cross-II solver matches the from-scratch
   closure on random loops, cell for cell at every feasible II (from
   RecMII up) and verdict for verdict below it.  This is the contract
   the schedulers rely on when they share one solver across an II
   search. *)
let prop_solver_equals_compute =
  QCheck.Test.make ~count:100 ~name:"mindist: solver = compute across IIs"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed; 23 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      let solver = Mindist.solver_full ddg in
      let recmii = Recmii.by_mindist ddg in
      let n = Ddg.n_total ddg in
      let ok = ref true in
      for ii = max 1 (recmii - 2) to recmii + 8 do
        let inc = Mindist.solve solver ~ii in
        (* [inc] borrows the solver's scratch, so read it fully before
           the next solve. *)
        if ii >= recmii then begin
          let full = Mindist.full ddg ~ii in
          if not (Mindist.feasible inc) then ok := false;
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              if Mindist.get inc i j <> Mindist.get full i j then ok := false
            done
          done
        end
        else if Mindist.feasible inc <> Mindist.feasible (Mindist.full ddg ~ii)
        then ok := false
      done;
      !ok)



(* --- Rational bounds and the unroll decision --------------------------------- *)

let three_loads_loop () =
  let b = Builder.create machine in
  for i = 0 to 2 do
    ignore
      (Builder.add b ~opcode:"load"
         ~dsts:[ Builder.vreg b (Printf.sprintf "x%d" i) ] ~srcs:[] ())
  done;
  Builder.finish b

let test_rational_res () =
  let r = Rational.of_ddg (three_loads_loop ()) in
  Alcotest.(check (float 1e-9)) "3 loads / 2 ports" 1.5 r.Rational.res;
  Alcotest.(check (float 1e-9)) "mii = res here" 1.5 r.Rational.mii

let test_rational_rec () =
  let ddg = reduction ~distance:3 machine in
  let r = Rational.of_ddg ddg in
  Alcotest.(check (float 1e-9)) "4 cycles / 3 iterations" (4.0 /. 3.0)
    r.Rational.rec_

let test_rational_floor_one () =
  let b = Builder.create machine in
  ignore (Builder.add b ~opcode:"store" ~dsts:[] ~srcs:[ (Builder.vreg b "v", 0) ] ());
  let r = Rational.of_ddg (Builder.finish b) in
  Alcotest.(check (float 1e-9)) "never below 1" 1.0 r.Rational.mii

let test_degradation () =
  let r = Rational.of_ddg (three_loads_loop ()) in
  Alcotest.(check (float 1e-9)) "ceil(1.5)/1.5 - 1" (1.0 /. 3.0)
    (Rational.degradation r ~factor:1);
  Alcotest.(check (float 1e-9)) "exact at factor 2" 0.0
    (Rational.degradation r ~factor:2)

let test_recommended_unroll () =
  Alcotest.(check int) "1.5 wants factor 2" 2
    (Rational.recommended_unroll (three_loads_loop ()));
  let b = Builder.create machine in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ Builder.vreg b "x" ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"load" ~dsts:[ Builder.vreg b "y" ] ~srcs:[] ());
  Alcotest.(check int) "integral mii needs no unrolling" 1
    (Rational.recommended_unroll (Builder.finish b))

(* Property: the integer MII is always the ceiling of a value at least
   the rational MII. *)
let prop_rational_below_integer =
  QCheck.Test.make ~count:80 ~name:"rational mii <= integer mii"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed; 31 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      match Rational.of_ddg ~circuit_limit:50000 ddg with
      | r ->
          let m = Mii.compute ddg in
          r.Rational.mii <= float_of_int m.Mii.mii +. 1e-9
          && float_of_int m.Mii.mii < r.Rational.mii +. 1.0
      | exception Ims_graph.Circuits.Limit_exceeded -> true)

let mii_extension_tests =
  [
    Alcotest.test_case "rational: res" `Quick test_rational_res;
    Alcotest.test_case "rational: rec" `Quick test_rational_rec;
    Alcotest.test_case "rational: floor 1" `Quick test_rational_floor_one;
    Alcotest.test_case "rational: degradation" `Quick test_degradation;
    Alcotest.test_case "rational: recommended unroll" `Quick
      test_recommended_unroll;
    QCheck_alcotest.to_alcotest prop_rational_below_integer;
  ]

let tests =
  ( "mii",
    [
      Alcotest.test_case "mindist: chain" `Quick test_mindist_chain;
      Alcotest.test_case "mindist: diagonal vs ii" `Quick
        test_mindist_diagonal_tracks_ii;
      Alcotest.test_case "mindist: zero diagonal" `Quick
        test_mindist_zero_diagonal_critical;
      Alcotest.test_case "resmii: empty" `Quick test_resmii_empty_is_one;
      Alcotest.test_case "resmii: adder saturation" `Quick
        test_resmii_single_adder_saturation;
      Alcotest.test_case "resmii: two ports" `Quick test_resmii_two_ports;
      Alcotest.test_case "resmii: alternatives balance" `Quick
        test_resmii_alternatives_balance;
      Alcotest.test_case "resmii: divide block" `Quick test_resmii_divide_block;
      Alcotest.test_case "resmii: usage profile" `Quick test_usage_profile;
      Alcotest.test_case "recmii: vectorizable" `Quick
        test_recmii_vectorizable_is_one;
      Alcotest.test_case "recmii: reduction" `Quick test_recmii_reduction;
      Alcotest.test_case "recmii: two-op circuit" `Quick
        test_recmii_two_op_circuit;
      Alcotest.test_case "recmii: distance divides" `Quick
        test_recmii_distance_divides;
      Alcotest.test_case "recmii: feasibility" `Quick test_recmii_feasibility;
      Alcotest.test_case "mii: production scheme short-cut" `Quick
        test_mii_from_skips_work_when_resmii_dominates;
      Alcotest.test_case "mii: max of both" `Quick test_mii_max_of_both;
      Alcotest.test_case "mii: fast = full" `Quick test_mii_fast_equals_full;
      Alcotest.test_case "schedule length lower bound" `Quick
        test_schedule_length_lower_bound;
      QCheck_alcotest.to_alcotest prop_recmii_methods_agree;
      QCheck_alcotest.to_alcotest prop_mii_fast_consistent;
      QCheck_alcotest.to_alcotest prop_solver_equals_compute;
    ]
    @ mii_extension_tests )
