(* Tests for the fleet-scale substrate: the binary loop wire format
   (round-trip, corruption rejection with byte offsets, version skew),
   sharded corpus generation determinism, journal component-hash
   mismatch naming, the fleet report merge, and the fleet throughput
   baseline gate. *)

open Ims_machine
open Ims_workloads
open Ims_obs

let machine = Machine.cydra5 ()

let tmp_path suffix =
  let path = Filename.temp_file "ims-fleet-test" suffix in
  at_exit (fun () -> if Sys.file_exists path then Sys.remove path);
  path

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* --- Loop_bin: encode/decode ------------------------------------------------ *)

(* The wire format's contract: decode∘encode reproduces the loop at the
   Loop_dump byte level — operations, operands, register numbering and
   the non-derivable dependences all survive. *)
let roundtrip_prop seed =
  let name, ddg = Corpus.build machine ~seed 0 in
  let payload = Loop_bin.encode ~name ddg in
  let name', ddg' = Loop_bin.decode machine payload in
  name = name' && Loop_dump.dump ddg = Loop_dump.dump ddg'

let test_roundtrip_qcheck =
  QCheck.Test.make ~count:150 ~name:"Loop_bin round-trips any synthetic loop"
    QCheck.(int_bound 1_000_000)
    roundtrip_prop

let test_roundtrip_lfk () =
  List.iter
    (fun (name, ddg) ->
      let name', ddg' =
        Loop_bin.decode machine (Loop_bin.encode ~name ddg)
      in
      Alcotest.(check string) (name ^ " name") name name';
      Alcotest.(check string)
        (name ^ " dump")
        (Loop_dump.dump ddg) (Loop_dump.dump ddg'))
    (Lfk.all machine)

let write_corpus path loops =
  let w = Loop_bin.create_writer path in
  List.iter (fun (name, ddg) -> Loop_bin.write w ~name ddg) loops;
  Loop_bin.close_writer w

let three_loops () = List.map (fun i -> Corpus.build machine ~seed:7 i) [ 0; 1; 2 ]

let test_file_roundtrip () =
  let path = tmp_path ".ilb" in
  let loops = three_loops () in
  write_corpus path loops;
  let seen = ref [] in
  let count =
    Loop_bin.iter path (fun r ->
        seen := Loop_bin.decode_record machine r :: !seen)
  in
  Alcotest.(check int) "record count" 3 count;
  List.iter2
    (fun (name, ddg) (name', ddg') ->
      Alcotest.(check string) "name" name name';
      Alcotest.(check string) "dump" (Loop_dump.dump ddg) (Loop_dump.dump ddg'))
    loops
    (List.rev !seen)

(* A record torn mid-payload is rejected, and the reported byte offset
   falls inside the truncated record — a repair tool can seek to it. *)
let test_truncation_rejected () =
  let path = tmp_path ".ilb" in
  write_corpus path (three_loops ());
  let bytes = read_bytes path in
  let cut = String.length bytes - 5 in
  write_bytes path (String.sub bytes 0 cut);
  match Loop_bin.iter path (fun _ -> ()) with
  | _ -> Alcotest.fail "truncated corpus accepted"
  | exception Loop_bin.Corrupt { offset; reason } ->
      Alcotest.(check bool)
        (Printf.sprintf "offset %d lands after the header (reason: %s)"
           offset reason)
        true
        (offset >= Loop_bin.header_bytes && offset <= cut)

let test_bitflip_rejected () =
  let path = tmp_path ".ilb" in
  write_corpus path (three_loops ());
  let bytes = Bytes.of_string (read_bytes path) in
  (* Flip one payload byte near the end of the file: the record's CRC
     must catch it and name a byte offset inside that record. *)
  let victim = Bytes.length bytes - 3 in
  Bytes.set bytes victim (Char.chr (Char.code (Bytes.get bytes victim) lxor 0x40));
  write_bytes path (Bytes.to_string bytes);
  match Loop_bin.iter path (fun _ -> ()) with
  | _ -> Alcotest.fail "bit-flipped corpus accepted"
  | exception Loop_bin.Corrupt { offset; reason } ->
      Alcotest.(check bool)
        (Printf.sprintf "CRC failure at offset %d (reason: %s)" offset reason)
        true
        (offset > Loop_bin.header_bytes
        && offset < Bytes.length bytes
        && String.length reason > 0)

(* A corpus written by a future format version is a structured refusal
   at the version field's offset, not a garbled parse. *)
let test_version_skew () =
  let path = tmp_path ".ilb" in
  write_corpus path (three_loops ());
  let bytes = Bytes.of_string (read_bytes path) in
  Bytes.set bytes 4 (Char.chr 99);
  write_bytes path (Bytes.to_string bytes);
  match Loop_bin.open_corpus path with
  | _ -> Alcotest.fail "future-version corpus accepted"
  | exception Loop_bin.Corrupt { offset; reason } ->
      Alcotest.(check int) "offset of the version field" 4 offset;
      Alcotest.(check bool)
        (Printf.sprintf "reason names the version (%s)" reason)
        true
        (String.length reason > 0)

let test_bad_magic () =
  let path = tmp_path ".ilb" in
  write_corpus path (three_loops ());
  let bytes = Bytes.of_string (read_bytes path) in
  Bytes.set bytes 0 'X';
  write_bytes path (Bytes.to_string bytes);
  match Loop_bin.open_corpus path with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception Loop_bin.Corrupt { offset; _ } ->
      Alcotest.(check int) "offset of the magic" 0 offset

(* --- Corpus: sharded generation --------------------------------------------- *)

(* Shard generation is byte-deterministic: generating only the residue
   class writes exactly the records the full corpus holds at those
   indices — same names, same payload bytes. *)
let test_shard_generation_deterministic () =
  let full = tmp_path ".ilb" and shard = tmp_path ".ilb" in
  let count = 40 and seed = 11 in
  let n_full = Corpus.generate machine ~seed ~count ~path:full in
  let n_shard =
    Corpus.generate ~shard:(2, 4) machine ~seed ~count ~path:shard
  in
  Alcotest.(check int) "full count" 40 n_full;
  Alcotest.(check int) "shard count" 10 n_shard;
  let records path =
    let acc = ref [] in
    ignore
      (Loop_bin.iter path (fun r ->
           acc := (r.Loop_bin.name, r.Loop_bin.payload) :: !acc));
    List.rev !acc
  in
  let expected =
    List.filteri (fun g _ -> g mod 4 = 1) (records full)
  in
  Alcotest.(check (list (pair string string)))
    "shard records byte-identical to the full corpus residue class"
    expected (records shard)

(* --- Journal: component-hash mismatch naming -------------------------------- *)

let manifest parts =
  {
    Ims_exec.Journal.version = Ims_exec.Journal.format_version;
    tool = "imsc-batch";
    hash = Ims_exec.Journal.hash_of_parts parts;
    jobs = 4;
    parts;
  }

let test_mismatch_names_component () =
  let base =
    [ ("machine", "aaa"); ("flags", "bbb"); ("corpus", "ccc"); ("shard", "1/2") ]
  in
  let journal = manifest base in
  let current =
    manifest
      [ ("machine", "aaa"); ("flags", "bbb"); ("corpus", "ddd"); ("shard", "1/2") ]
  in
  let msg = Ims_exec.Journal.explain_mismatch ~journal ~current in
  Alcotest.(check bool)
    (Printf.sprintf "names the corpus (%s)" msg)
    true
    (let has sub =
       let n = String.length sub and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
       go 0
     in
     has "corpus diverged" && has "mismatch" && not (has "flags diverged"))

let test_mismatch_v1_fallback () =
  let journal = { (manifest []) with hash = "cafe"; version = 1 } in
  let current = manifest [ ("machine", "aaa") ] in
  let msg = Ims_exec.Journal.explain_mismatch ~journal ~current in
  Alcotest.(check bool)
    (Printf.sprintf "still a mismatch message (%s)" msg)
    true
    (String.length msg > 0
    && String.sub msg 0 17 = "manifest mismatch")

let test_manifest_parts_roundtrip () =
  let path = tmp_path ".journal" in
  let parts = [ ("machine", "m1"); ("corpus", "c1") ] in
  let w = Ims_exec.Journal.create ~path (manifest parts) in
  Ims_exec.Journal.append w ~index:0 (Json.String "line0");
  Ims_exec.Journal.close w;
  match Ims_exec.Journal.read ~path with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check (list (pair string string)))
        "parts survive the disk round-trip" parts
        r.Ims_exec.Journal.manifest.Ims_exec.Journal.parts

(* --- Fleet: deterministic merge --------------------------------------------- *)

let line name status extra =
  Json.to_string
    (Json.Obj
       ([ ("name", Json.String name); ("status", Json.String status) ] @ extra))

let write_lines path lines =
  write_bytes path (String.concat "" (List.map (fun l -> l ^ "\n") lines))

(* Seven global lines over three shards by residue class; the merge
   must interleave them back into global order and count the one
   casualty and the one degraded line. *)
let test_merge_interleaves () =
  let global =
    List.init 7 (fun g ->
        let status = if g = 3 then "failed" else "ok" in
        let extra = if g = 5 then [ ("degraded", Json.Bool true) ] else [] in
        line (Printf.sprintf "g%d" g) status extra)
  in
  let shards = [ tmp_path ".jsonl"; tmp_path ".jsonl"; tmp_path ".jsonl" ] in
  List.iteri
    (fun k path ->
      write_lines path (List.filteri (fun g _ -> g mod 3 = k) global))
    shards;
  let out = ref [] in
  match
    Ims_fleet.Fleet.merge_reports ~reports:shards
      ~emit:(fun l -> out := l :: !out)
  with
  | Error e -> Alcotest.fail e
  | Ok stats ->
      Alcotest.(check (list string)) "global order" global (List.rev !out);
      Alcotest.(check int) "lines" 7 stats.Ims_fleet.Fleet.lines;
      Alcotest.(check int) "casualties" 1 stats.Ims_fleet.Fleet.merge_casualties;
      Alcotest.(check int) "degraded" 1 stats.Ims_fleet.Fleet.merge_degraded

let test_merge_rejects_uneven_shards () =
  let a = tmp_path ".jsonl" and b = tmp_path ".jsonl" in
  write_lines a [ line "g0" "ok" [] ];
  write_lines b [ line "g1" "ok" []; line "g3" "ok" []; line "g5" "ok" [] ];
  match
    Ims_fleet.Fleet.merge_reports ~reports:[ a; b ] ~emit:(fun _ -> ())
  with
  | Ok _ -> Alcotest.fail "uneven shard reports merged"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the shard (%s)" e)
        true
        (String.length e > 0)

let test_merge_rejects_garbage_line () =
  let a = tmp_path ".jsonl" in
  write_lines a [ line "g0" "ok" []; "not json at all" ];
  match Ims_fleet.Fleet.merge_reports ~reports:[ a ] ~emit:(fun _ -> ()) with
  | Ok _ -> Alcotest.fail "garbage line merged"
  | Error _ -> ()

(* --- Baseline: the fleet throughput gate ------------------------------------ *)

let fleet_snapshot ?(loops = 1000) ?(workers = 4) lps =
  Json.Obj
    [
      ( "fleet",
        Json.Obj
          [
            ("loops", Json.Int loops);
            ("workers", Json.Int workers);
            ("loops_per_s", Json.Float lps);
          ] );
    ]

let test_baseline_gates_fleet_throughput () =
  (* Default time tolerance is 300%: the limit is baseline/4. *)
  let baseline = fleet_snapshot 1000.0 in
  (match
     Baseline.compare_snapshots ~baseline ~current:(fleet_snapshot 100.0) ()
   with
  | [ r ] ->
      Alcotest.(check string) "metric" "fleet.loops_per_s" r.Baseline.metric
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected one regression, got %d" (List.length rs)));
  Alcotest.(check int)
    "within tolerance passes" 0
    (List.length
       (Baseline.compare_snapshots ~baseline ~current:(fleet_snapshot 500.0) ()));
  Alcotest.(check int)
    "faster passes" 0
    (List.length
       (Baseline.compare_snapshots ~baseline ~current:(fleet_snapshot 2000.0) ()))

let test_baseline_skips_shape_mismatch () =
  (* A quick smoke snapshot must not gate a million-loop run. *)
  let baseline = fleet_snapshot ~loops:100 1000.0 in
  Alcotest.(check int)
    "different corpus size is incomparable" 0
    (List.length
       (Baseline.compare_snapshots ~baseline
          ~current:(fleet_snapshot ~loops:1_000_000 1.0)
          ()));
  Alcotest.(check int)
    "different worker count is incomparable" 0
    (List.length
       (Baseline.compare_snapshots ~baseline
          ~current:(fleet_snapshot ~loops:100 ~workers:8 1.0)
          ()))

let tests =
  ( "fleet",
    [
      QCheck_alcotest.to_alcotest test_roundtrip_qcheck;
      Alcotest.test_case "Loop_bin round-trips every Livermore kernel" `Quick
        test_roundtrip_lfk;
      Alcotest.test_case "corpus file round-trips through iter" `Quick
        test_file_roundtrip;
      Alcotest.test_case "truncated record rejected with byte offset" `Quick
        test_truncation_rejected;
      Alcotest.test_case "bit-flipped record rejected by CRC" `Quick
        test_bitflip_rejected;
      Alcotest.test_case "future format version refused at offset 4" `Quick
        test_version_skew;
      Alcotest.test_case "bad magic refused at offset 0" `Quick test_bad_magic;
      Alcotest.test_case "shard generation byte-deterministic" `Quick
        test_shard_generation_deterministic;
      Alcotest.test_case "resume mismatch names the diverged component" `Quick
        test_mismatch_names_component;
      Alcotest.test_case "v1 journal mismatch falls back to digests" `Quick
        test_mismatch_v1_fallback;
      Alcotest.test_case "manifest parts survive the disk round-trip" `Quick
        test_manifest_parts_roundtrip;
      Alcotest.test_case "merge interleaves shards into global order" `Quick
        test_merge_interleaves;
      Alcotest.test_case "merge rejects uneven shard reports" `Quick
        test_merge_rejects_uneven_shards;
      Alcotest.test_case "merge rejects an unparseable report line" `Quick
        test_merge_rejects_garbage_line;
      Alcotest.test_case "baseline gates fleet loops/s regressions" `Quick
        test_baseline_gates_fleet_throughput;
      Alcotest.test_case "baseline skips fleet shape mismatches" `Quick
        test_baseline_skips_shape_mismatch;
    ] )
