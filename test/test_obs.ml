(* Tests for the observability substrate: trace and span structure,
   export well-formedness (every line must parse as JSON), registry
   determinism, the Counters adapter, and — the integration check — a
   traced scheduling run whose replayed place/evict events must land on
   exactly the placements of the returned Schedule.t. *)

open Ims_machine
open Ims_ir
open Ims_mii
open Ims_core
open Ims_workloads
open Ims_obs

let machine = Machine.cydra5 ()

(* A trace exercising every payload constructor. *)
let sample_trace () =
  let tr = Trace.create () in
  Trace.with_span tr "outer" (fun () ->
      Trace.ii_start tr ~ii:3 ~attempt:1 ~budget:20;
      Trace.with_span tr "inner" (fun () ->
          Trace.place tr ~op:1 ~time:0 ~alt:0 ~estart:0 ~forced:false;
          Trace.evict tr ~op:2 ~by:1 ~time:4 ~reason:Event.Dependence;
          Trace.place tr ~op:2 ~time:5 ~alt:1 ~estart:4 ~forced:true;
          Trace.evict tr ~op:3 ~by:2 ~time:5 ~reason:Event.Resource);
      Trace.budget_exhausted tr ~ii:3 ~unplaced:2;
      Trace.ii_end tr ~ii:3 ~scheduled:false ~steps:20;
      Trace.instant tr "note");
  tr

(* --- the no-op sink ------------------------------------------------------- *)

let test_null_sink_records_nothing () =
  let tr = Trace.null in
  Trace.place tr ~op:1 ~time:0 ~alt:0 ~estart:0 ~forced:false;
  Trace.evict tr ~op:2 ~by:1 ~time:4 ~reason:Event.Resource;
  Trace.ii_start tr ~ii:3 ~attempt:1 ~budget:20;
  Trace.instant tr "nothing";
  let x = Trace.with_span tr "span" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span is transparent" 42 x;
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  Alcotest.(check int) "no events" 0 (List.length (Trace.events tr));
  Alcotest.(check int) "no span times" 0 (List.length (Trace.span_times tr))

(* --- span structure ------------------------------------------------------- *)

let span_stack_well_formed events =
  (* Every Span_end must match the innermost open Span_begin; return
     whether the stack closes. *)
  let stack =
    List.fold_left
      (fun stack (e : Event.t) ->
        match e.Event.payload with
        | Event.Span_begin { name } -> name :: stack
        | Event.Span_end { name } -> (
            match stack with
            | top :: rest when top = name -> rest
            | _ -> Alcotest.failf "span_end %S does not match stack" name)
        | _ -> stack)
      [] events
  in
  stack = []

let test_span_nesting () =
  let tr = sample_trace () in
  let events = Trace.events tr in
  Alcotest.(check bool) "well-formed" true (span_stack_well_formed events);
  (* Sequence numbers are dense and increasing. *)
  List.iteri
    (fun i (e : Event.t) -> Alcotest.(check int) "dense seq" i e.Event.seq)
    events;
  let times = Trace.span_times tr in
  Alcotest.(check (list string)) "span names, sorted" [ "inner"; "outer" ]
    (List.map fst times);
  List.iter
    (fun (_, (count, total)) ->
      Alcotest.(check int) "one completion" 1 count;
      Alcotest.(check bool) "non-negative time" true (total >= 0.0))
    times

let test_span_closes_on_raise () =
  let tr = Trace.create () in
  (try Trace.with_span tr "doomed" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check bool) "still well-formed" true
    (span_stack_well_formed (Trace.events tr));
  Alcotest.(check int) "span completed" 1 (List.length (Trace.span_times tr))

(* --- exports -------------------------------------------------------------- *)

let test_jsonl_parses_line_by_line () =
  let tr = sample_trace () in
  let text = Export.jsonl_string (Trace.events tr) in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one line per event" (List.length (Trace.events tr))
    (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj fields) ->
          Alcotest.(check bool) "has seq" true (List.mem_assoc "seq" fields);
          Alcotest.(check bool) "has event" true (List.mem_assoc "event" fields)
      | Ok _ -> Alcotest.fail "line is not a JSON object"
      | Error msg -> Alcotest.failf "unparseable line %S: %s" line msg)
    lines

let test_chrome_parses_as_json () =
  let tr = sample_trace () in
  let events = Trace.events tr in
  match Json.of_string (Export.chrome_string events) with
  | Error msg -> Alcotest.failf "chrome export does not parse: %s" msg
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Json.List tes) ->
          (* Two metadata records (process_name, thread_name) label the
             Perfetto track ahead of the real events. *)
          Alcotest.(check int) "one trace event per event, plus metadata"
            (List.length events + 2) (List.length tes);
          (match tes with
          | Json.Obj m :: _ ->
              Alcotest.(check bool) "leads with process_name metadata" true
                (List.assoc_opt "name" m = Some (Json.String "process_name")
                && List.assoc_opt "ph" m = Some (Json.String "M"))
          | _ -> Alcotest.fail "first trace event is not an object");
          List.iter
            (function
              | Json.Obj f ->
                  (* Metadata records ("ph":"M") carry args instead of a
                     timestamp. *)
                  let keys =
                    if List.assoc_opt "ph" f = Some (Json.String "M") then
                      [ "name"; "ph"; "pid"; "args" ]
                    else [ "name"; "ph"; "ts"; "pid"; "tid" ]
                  in
                  List.iter
                    (fun key ->
                      Alcotest.(check bool) ("has " ^ key) true
                        (List.mem_assoc key f))
                    keys
              | _ -> Alcotest.fail "trace event is not an object")
            tes
      | _ -> Alcotest.fail "no traceEvents list")
  | Ok _ -> Alcotest.fail "chrome export is not a JSON object"

let test_exports_deterministic () =
  let a = sample_trace () and b = sample_trace () in
  Alcotest.(check string) "jsonl byte-identical"
    (Export.jsonl_string (Trace.events a))
    (Export.jsonl_string (Trace.events b));
  Alcotest.(check string) "chrome byte-identical"
    (Export.chrome_string (Trace.events a))
    (Export.chrome_string (Trace.events b))

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("o", Json.Obj [ ("empty", Json.List []) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check string) "round-trips" (Json.to_string v) (Json.to_string v')
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg

(* --- metrics registry ----------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "z.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  (* Re-registration returns the same instrument. *)
  Metrics.incr (Metrics.counter m "z.count");
  Alcotest.(check int) "counter accumulates" 6 (Metrics.counter_value c);
  Metrics.set (Metrics.gauge m "a.gauge") 2.5;
  let h = Metrics.histogram m "m.hist" in
  List.iter (Metrics.observe h) [ 3.0; 1.0; 2.0 ];
  (match Metrics.to_assoc m with
  | [ ("a.gauge", Metrics.Gauge g); ("m.hist", Metrics.Histogram hs); ("z.count", Metrics.Counter n) ]
    ->
      Alcotest.(check (float 1e-9)) "gauge" 2.5 g;
      Alcotest.(check int) "hist count" 3 hs.count;
      Alcotest.(check (float 1e-9)) "hist sum" 6.0 hs.sum;
      Alcotest.(check (float 1e-9)) "hist min" 1.0 hs.min;
      Alcotest.(check (float 1e-9)) "hist max" 3.0 hs.max;
      Alcotest.(check int) "counter" 6 n
  | other -> Alcotest.failf "unexpected readout (%d entries)" (List.length other));
  (* Kind clash is a programming error. *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"z.count\" is a counter, not a gauge")
    (fun () -> ignore (Metrics.gauge m "z.count"));
  (* JSON readout parses and is sorted. *)
  match Json.of_string (Json.to_string (Metrics.to_json m)) with
  | Ok (Json.Obj fields) ->
      let keys = List.map fst fields in
      Alcotest.(check (list string)) "sorted keys"
        [ "a.gauge"; "m.hist"; "z.count" ] keys
  | _ -> Alcotest.fail "metrics JSON does not parse"

(* --- the Counters adapter ------------------------------------------------- *)

let distinct_counters () =
  let c = Counters.create () in
  c.Counters.scc_steps <- 1;
  c.Counters.resmii_steps <- 2;
  c.Counters.mindist_inner <- 3;
  c.Counters.mindist_calls <- 4;
  c.Counters.mindist_inc <- 5;
  c.Counters.heightr_inner <- 6;
  c.Counters.estart_inner <- 7;
  c.Counters.findslot_inner <- 8;
  c.Counters.mrt_bitprobe <- 9;
  c.Counters.sched_steps <- 10;
  c.Counters.sched_steps_final <- 11;
  c

let test_counters_to_assoc_vs_pp () =
  let c = distinct_counters () in
  let rendered = Format.asprintf "%a" Counters.pp c in
  (* The canonical format, pinned byte for byte. *)
  Alcotest.(check string) "pp format unchanged"
    "scc=1 resmii=2 mindist=3(x4,inc 5) heightr=6 estart=7 findslot=8 \
     bitprobe=9 sched=10(final 11)"
    rendered;
  let assoc = Counters.to_assoc c in
  Alcotest.(check int) "eleven fields" 11 (List.length assoc);
  (* Every to_assoc value is visible in the pp output under its name. *)
  List.iter
    (fun (name, v) ->
      let witness =
        match name with
        | "mindist_calls" -> Printf.sprintf "(x%d," v
        | "mindist_inc" -> Printf.sprintf "inc %d)" v
        | "mrt_bitprobe" -> Printf.sprintf "bitprobe=%d" v
        | "sched_final" -> Printf.sprintf "(final %d)" v
        | _ -> Printf.sprintf "%s=%d" name v
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (name ^ " appears in pp") true
        (contains rendered witness))
    assoc

let test_counters_reset_and_record () =
  let c = distinct_counters () in
  let m = Metrics.create () in
  Counters.record m c;
  Alcotest.(check int) "adapter: scc" 1
    (Metrics.counter_value (Metrics.counter m "counters.scc"));
  Alcotest.(check int) "adapter: sched_final" 11
    (Metrics.counter_value (Metrics.counter m "counters.sched_final"));
  (* record accumulates on a second call. *)
  Counters.record m c;
  Alcotest.(check int) "adapter accumulates" 2
    (Metrics.counter_value (Metrics.counter m "counters.scc"));
  Counters.reset c;
  List.iter
    (fun (name, v) -> Alcotest.(check int) (name ^ " zeroed") 0 v)
    (Counters.to_assoc c)

(* --- integration: trace vs returned schedule ------------------------------ *)

(* Replay the place/evict events: the surviving placement per op must be
   exactly the returned schedule. *)
let final_placements events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Ii_start _ ->
          (* A fresh candidate II starts from nothing. *)
          Hashtbl.reset tbl
      | Event.Place { op; time; alt; _ } -> Hashtbl.replace tbl op (time, alt)
      | Event.Evict { op; _ } -> Hashtbl.remove tbl op
      | _ -> ())
    events;
  tbl

let check_traced_run name ddg =
  let trace = Trace.create () in
  let out = Ims.modulo_schedule ~trace ddg in
  match out.Ims.schedule with
  | None -> Alcotest.failf "%s: no schedule" name
  | Some s ->
      let tbl = final_placements (Trace.events trace) in
      let n = Ddg.n_total ddg in
      (* START is pre-placed at 0 and never traced; every other op's
         last surviving place event must equal the schedule entry. *)
      Alcotest.(check int)
        (name ^ ": one surviving placement per op")
        (n - 1) (Hashtbl.length tbl);
      for op = 1 to n - 1 do
        match Hashtbl.find_opt tbl op with
        | None -> Alcotest.failf "%s: op %d has no surviving placement" name op
        | Some (time, alt) ->
            Alcotest.(check int)
              (Printf.sprintf "%s: op %d time" name op)
              (Schedule.time s op) time;
            Alcotest.(check int)
              (Printf.sprintf "%s: op %d alt" name op)
              (Schedule.alt s op) alt
      done

let test_traced_lfk_placements () =
  List.iter
    (fun name -> check_traced_run name (Lfk.build machine name))
    [ "lfk07"; "lfk08"; "lfk20" ]

let test_traced_run_has_schedule_events () =
  let trace = Trace.create () in
  let ddg = Lfk.build machine "lfk07" in
  let out = Ims.modulo_schedule ~trace ddg in
  ignore out.Ims.schedule;
  let events = Trace.events trace in
  let count p = List.length (List.filter p events) in
  Alcotest.(check bool) "has places" true
    (count (fun e -> match e.Event.payload with Event.Place _ -> true | _ -> false)
    >= Ddg.n_total ddg - 1);
  Alcotest.(check int) "one ii_start" 1
    (count (fun e ->
         match e.Event.payload with Event.Ii_start _ -> true | _ -> false));
  Alcotest.(check bool) "mii spans present" true
    (count (fun e ->
         match e.Event.payload with
         | Event.Span_begin { name } -> name = "mii.resmii" || name = "mii.recmii"
         | _ -> false)
    = 2);
  (* The same input traced twice exports to identical bytes. *)
  let trace2 = Trace.create () in
  ignore (Ims.modulo_schedule ~trace:trace2 ddg);
  Alcotest.(check string) "traced run is deterministic"
    (Export.jsonl_string events)
    (Export.jsonl_string (Trace.events trace2))

let test_explain_narrative () =
  let trace = Trace.create () in
  let ddg = Lfk.build machine "lfk07" in
  ignore (Ims.modulo_schedule ~trace ddg);
  let text = Format.asprintf "%a" (fun ppf -> Explain.pp ppf) (Trace.events trace) in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "narrates placements" true (contains "place op ");
  Alcotest.(check bool) "narrates the II search" true (contains "trying II=")

let tests =
  ( "obs",
    [
      Alcotest.test_case "null sink records nothing" `Quick
        test_null_sink_records_nothing;
      Alcotest.test_case "span nesting well-formed" `Quick test_span_nesting;
      Alcotest.test_case "span closes on raise" `Quick test_span_closes_on_raise;
      Alcotest.test_case "jsonl parses line-by-line" `Quick
        test_jsonl_parses_line_by_line;
      Alcotest.test_case "chrome trace parses" `Quick test_chrome_parses_as_json;
      Alcotest.test_case "exports deterministic" `Quick
        test_exports_deterministic;
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
      Alcotest.test_case "counters: to_assoc vs pp" `Quick
        test_counters_to_assoc_vs_pp;
      Alcotest.test_case "counters: reset + record" `Quick
        test_counters_reset_and_record;
      Alcotest.test_case "traced LFK placements = schedule" `Quick
        test_traced_lfk_placements;
      Alcotest.test_case "traced run event inventory" `Quick
        test_traced_run_has_schedule_events;
      Alcotest.test_case "explain narrative" `Quick test_explain_narrative;
    ] )
