(* Tests for the post-scheduling pipeline: lifetimes, modulo variable
   expansion, rotating-register allocation, code emission and the
   cycle-accurate simulator. *)

open Ims_machine
open Ims_ir
open Ims_core
open Ims_pipeline

let machine = Machine.cydra5 ()

let schedule_of ddg =
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | Some s -> s
  | None -> Alcotest.fail "scheduling failed"

let dot_product () =
  let b = Builder.create machine in
  let a = Builder.vreg b "a" and x = Builder.vreg b "x" in
  let y = Builder.vreg b "y" and s = Builder.vreg b "s" in
  ignore (Builder.add b ~opcode:"aadd" ~dsts:[ a ] ~srcs:[ (a, 1) ] ());
  ignore (Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[ (a, 0) ] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (x, 0); (x, 0) ] ());
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1); (y, 0) ] ());
  Builder.finish b

(* --- Lifetimes ----------------------------------------------------------- *)

let test_lifetime_covers_uses () =
  let s = schedule_of (dot_product ()) in
  let ranges = Lifetime.analyze s in
  List.iter
    (fun (r : Lifetime.range) ->
      Alcotest.(check bool) "last use after def" true
        (r.last_use_time >= r.def_time);
      Alcotest.(check bool) "copies positive" true (r.copies >= 1))
    ranges;
  Alcotest.(check int) "one range per defined register" 4 (List.length ranges)

let test_lifetime_long_latency_needs_copies () =
  (* The load value is consumed by the fmul; with II = 4 and a 20-cycle
     load the value lives at least 20 cycles: >= 5 copies. *)
  let s = schedule_of (dot_product ()) in
  let ranges = Lifetime.analyze s in
  let x_range =
    List.find
      (fun (r : Lifetime.range) -> r.length >= 20)
      ranges
  in
  Alcotest.(check bool) "long value spans kernels" true (x_range.copies >= 5)

let test_lifetime_loop_carried_extends () =
  (* s read at distance 1: its lifetime is at least II. *)
  let sched = schedule_of (dot_product ()) in
  let ranges = Lifetime.analyze sched in
  Alcotest.(check bool) "some range crosses an iteration" true
    (List.exists (fun (r : Lifetime.range) -> r.length >= sched.Schedule.ii) ranges)

(* --- MVE ------------------------------------------------------------------ *)

let test_mve_unroll_factor () =
  let s = schedule_of (dot_product ()) in
  let mve = Mve.expand s in
  let max_copies =
    List.fold_left (fun a (r : Lifetime.range) -> max a r.copies) 1 mve.Mve.ranges
  in
  Alcotest.(check int) "unroll = max copies" max_copies mve.Mve.unroll;
  Alcotest.(check bool) "needs expansion here" true (mve.Mve.unroll > 1)

let test_mve_rename_wraps () =
  let s = schedule_of (dot_product ()) in
  let mve = Mve.expand s in
  let k = mve.Mve.unroll in
  (* Reading distance 1 from copy 0 reaches the last copy. *)
  let r = List.hd mve.Mve.ranges in
  Alcotest.(check string) "wraparound rename"
    (Printf.sprintf "v%d.%d" r.Lifetime.reg (k - 1))
    (Mve.rename mve ~reg:r.Lifetime.reg ~copy:0 ~distance:1)

let test_mve_live_in_keeps_name () =
  let s = schedule_of (dot_product ()) in
  let mve = Mve.expand s in
  (* Register 99 is never defined in the loop. *)
  Alcotest.(check string) "live-in unchanged" "v99"
    (Mve.rename mve ~reg:99 ~copy:1 ~distance:0)

let test_mve_code_growth () =
  let s = schedule_of (dot_product ()) in
  let mve = Mve.expand s in
  Alcotest.(check int) "kernel ops after expansion"
    (mve.Mve.unroll * 4) (Mve.code_growth mve)

(* --- Rotating registers ---------------------------------------------------- *)

let test_rotreg_allocation_verifies () =
  let s = schedule_of (dot_product ()) in
  let alloc = Rotreg.allocate s in
  (match Rotreg.verify alloc with
  | Ok () -> ()
  | Error es -> Alcotest.failf "bad allocation: %s" (String.concat "; " es));
  Alcotest.(check bool) "uses some rotating registers" true
    (alloc.Rotreg.file_size >= 4)

let test_rotreg_vacating_distances () =
  (* Every base is distinct, and each variant's own vacating distance
     (its lifetime in iterations) fits in the file. *)
  let s = schedule_of (dot_product ()) in
  let alloc = Rotreg.allocate s in
  let bases = List.map (fun (_, b, _) -> b) alloc.Rotreg.blocks in
  Alcotest.(check int) "bases distinct" (List.length bases)
    (List.length (List.sort_uniq compare bases));
  List.iter
    (fun (_, _, omega) ->
      Alcotest.(check bool) "own rewrite after death" true
        (omega <= alloc.Rotreg.file_size))
    alloc.Rotreg.blocks

let test_rotreg_reference_syntax () =
  let s = schedule_of (dot_product ()) in
  let alloc = Rotreg.allocate s in
  match alloc.Rotreg.blocks with
  | (reg, base, _) :: _ ->
      Alcotest.(check string) "reference at distance 1"
        (Printf.sprintf "RR[%d]" (base + 1))
        (Rotreg.reference alloc ~reg ~distance:1)
  | [] -> Alcotest.fail "no blocks"

let test_rotreg_live_in_reference () =
  let s = schedule_of (dot_product ()) in
  let alloc = Rotreg.allocate s in
  Alcotest.(check string) "live-in stays virtual" "v77"
    (Rotreg.reference alloc ~reg:77 ~distance:0)

(* --- Codegen ---------------------------------------------------------------- *)

let test_codegen_rotating_no_expansion () =
  let s = schedule_of (dot_product ()) in
  Alcotest.(check int) "rotating schema emits n ops" 4
    (Codegen.code_size Codegen.Rotating s)

let test_codegen_mve_expands () =
  let s = schedule_of (dot_product ()) in
  let size = Codegen.code_size Codegen.Mve s in
  Alcotest.(check bool) "mve schema larger than the loop body" true (size > 4)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_codegen_listing_mentions_kernel () =
  let s = schedule_of (dot_product ()) in
  let rot = Codegen.emit Codegen.Rotating s in
  Alcotest.(check bool) "kernel section" true (contains rot "kernel:")

let test_codegen_mve_listing_has_prologue () =
  let s = schedule_of (dot_product ()) in
  let text = Codegen.emit Codegen.Mve s in
  Alcotest.(check bool) "prologue" true (contains text "prologue:");
  Alcotest.(check bool) "epilogue" true (contains text "epilogue:")

(* --- Simulator --------------------------------------------------------------- *)

let test_simulator_matches_formula () =
  let s = schedule_of (dot_product ()) in
  match Simulator.run ~trip:12 s with
  | Error es -> Alcotest.failf "sim failed: %s" (String.concat "; " es)
  | Ok r ->
      Alcotest.(check bool) "completion within formula" true
        (r.Simulator.completion <= r.Simulator.formula);
      Alcotest.(check int) "formula = SL + (n-1)*II"
        (Schedule.length s + (11 * s.Schedule.ii))
        r.Simulator.formula;
      Alcotest.(check int) "issues = trip * ops" (12 * 4) r.Simulator.issues

let test_simulator_overlap () =
  let s = schedule_of (dot_product ()) in
  match Simulator.run s with
  | Error es -> Alcotest.failf "sim failed: %s" (String.concat "; " es)
  | Ok r ->
      Alcotest.(check bool) "iterations overlap" true
        (r.Simulator.peak_in_flight > 1)

let test_simulator_catches_bad_schedule () =
  let ddg = dot_product () in
  (* Everything at cycle 0: wildly illegal. *)
  let entries =
    Array.init (Ddg.n_total ddg) (fun _ -> { Schedule.time = 0; alt = 0 })
  in
  let s = Schedule.make ddg ~ii:4 ~entries in
  match Simulator.run s with
  | Ok _ -> Alcotest.fail "simulator accepted a bogus schedule"
  | Error es -> Alcotest.(check bool) "errors reported" true (es <> [])

(* Hand-built wrecks on the simple VLIW pin down the exact diagnostics
   the rest of the checker stack (and its users) matches on. *)

let broken_schedule_of ops ~times =
  let vliw = Machine.simple_vliw () in
  let ddg = Ddg.make vliw ops [] in
  let entries =
    Array.init (Ddg.n_total ddg) (fun i ->
        let time =
          if i = 0 then 0
          else if i = Ddg.stop ddg then 4
          else List.nth times (i - 1)
        in
        { Schedule.time; alt = 0 })
  in
  Schedule.make ddg ~ii:4 ~entries

let test_simulator_reports_early_read () =
  (* The load (latency 2) writes v1 at cycle 0; the add reads it at
     cycle 1, one cycle before write-back. *)
  let s =
    broken_schedule_of ~times:[ 0; 1 ]
      [
        { Op.id = 1; opcode = "load"; dsts = [ 1 ]; srcs = []; pred = None;
          imm = None; tag = "v1 = load" };
        { Op.id = 2; opcode = "add"; dsts = [ 2 ]; srcs = [ Op.cur 1 ];
          pred = None; imm = None; tag = "v2 = add v1" };
      ]
  in
  match Simulator.run ~trip:1 s with
  | Ok _ -> Alcotest.fail "simulator accepted a premature read"
  | Error es ->
      Alcotest.(check (list string)) "exact diagnostic"
        [ "op 2 iter 0 reads v1[0] at cycle 1 but it is ready only at 2" ]
        es

let test_simulator_reports_oversubscription () =
  (* Two loads in the same cycle on the single MEM port. *)
  let s =
    broken_schedule_of ~times:[ 0; 0 ]
      [
        { Op.id = 1; opcode = "load"; dsts = [ 1 ]; srcs = []; pred = None;
          imm = None; tag = "v1 = load" };
        { Op.id = 2; opcode = "load"; dsts = [ 2 ]; srcs = []; pred = None;
          imm = None; tag = "v2 = load" };
      ]
  in
  match Simulator.run ~trip:1 s with
  | Ok _ -> Alcotest.fail "simulator accepted an oversubscribed port"
  | Error es ->
      Alcotest.(check (list string)) "exact diagnostic"
        [ "resource MEM oversubscribed at cycle 0" ]
        es

let test_simulator_utilization_sane () =
  let s = schedule_of (dot_product ()) in
  match Simulator.run ~trip:30 s with
  | Error es -> Alcotest.failf "sim failed: %s" (String.concat "; " es)
  | Ok r ->
      List.iter
        (fun (name, u) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s utilisation in [0,1]" name)
            true
            (u >= 0.0 && u <= 1.0))
        r.Simulator.utilization

(* Property: the pipeline holds end-to-end on random loops — schedule,
   verify, allocate, simulate. *)
let prop_pipeline_end_to_end =
  QCheck.Test.make ~count:60 ~name:"pipeline: end-to-end on random loops"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 11 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      match (Ims.modulo_schedule ddg).Ims.schedule with
      | None -> false
      | Some s -> (
          Schedule.verify s = Ok ()
          && Rotreg.verify (Rotreg.allocate s) = Ok ()
          &&
          match Simulator.run s with Ok _ -> true | Error _ -> false))



(* --- Lifetime compaction -------------------------------------------------------- *)

let test_compact_never_worse () =
  let s = schedule_of (dot_product ()) in
  let r = Compact.improve s in
  Alcotest.(check bool) "lifetime does not grow" true
    (r.Compact.lifetime_after <= r.Compact.lifetime_before);
  Alcotest.(check int) "objective recomputes" r.Compact.lifetime_after
    (Compact.total_lifetime r.Compact.schedule)

let test_compact_stays_valid () =
  let s = schedule_of (dot_product ()) in
  let r = Compact.improve s in
  Alcotest.(check bool) "still legal" true
    (Schedule.verify r.Compact.schedule = Ok ());
  Alcotest.(check int) "same ii" s.Schedule.ii r.Compact.schedule.Schedule.ii

let test_compact_preserves_schedule_length () =
  let s = schedule_of (dot_product ()) in
  let r = Compact.improve s in
  Alcotest.(check bool) "SL does not grow" true
    (Schedule.length r.Compact.schedule <= Schedule.length s)

let prop_compact_end_to_end =
  QCheck.Test.make ~count:30 ~name:"compact: valid and never worse"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 17 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      if Ims_ir.Ddg.n_real ddg > 50 then true
      else
        match (Ims.modulo_schedule ddg).Ims.schedule with
        | None -> false
        | Some s ->
            let r = Compact.improve s in
            Schedule.verify r.Compact.schedule = Ok ()
            && r.Compact.lifetime_after <= r.Compact.lifetime_before)

let pipeline_extension_tests =
  [
    Alcotest.test_case "compact: never worse" `Quick test_compact_never_worse;
    Alcotest.test_case "compact: stays valid" `Quick test_compact_stays_valid;
    Alcotest.test_case "compact: SL preserved" `Quick
      test_compact_preserves_schedule_length;
    QCheck_alcotest.to_alcotest prop_compact_end_to_end;
  ]


(* --- Trip-count tradeoff --------------------------------------------------------- *)

let test_tradeoff_break_even () =
  let s = schedule_of (dot_product ()) in
  let t = Tradeoff.analyze s in
  Alcotest.(check bool) "break-even is finite" true (t.Tradeoff.break_even < max_int);
  (* At the break-even trip, pipelined is no slower; one before, it is
     not yet ahead of the serial loop. *)
  let n = t.Tradeoff.break_even in
  Alcotest.(check bool) "no slower at break-even" true
    (Tradeoff.pipelined_cycles t ~trip:n <= Tradeoff.unpipelined_cycles t ~trip:n);
  if n > 1 then
    Alcotest.(check bool) "slower just before" true
      (Tradeoff.pipelined_cycles t ~trip:(n - 1)
      > Tradeoff.unpipelined_cycles t ~trip:(n - 1))

let test_tradeoff_speedup_grows () =
  let s = schedule_of (dot_product ()) in
  let t = Tradeoff.analyze s in
  Alcotest.(check bool) "speedup grows with trip" true
    (Tradeoff.speedup t ~trip:1000 > Tradeoff.speedup t ~trip:10)

let test_tradeoff_formula () =
  let s = schedule_of (dot_product ()) in
  let t = Tradeoff.analyze s in
  Alcotest.(check int) "pipelined formula"
    (Schedule.length s + (9 * s.Schedule.ii))
    (Tradeoff.pipelined_cycles t ~trip:10)

(* --- MVE kernel register allocation --------------------------------------------- *)

let test_regalloc_verifies () =
  let s = schedule_of (dot_product ()) in
  let ra = Regalloc.allocate s in
  (match Regalloc.verify ra with
  | Ok () -> ()
  | Error es -> Alcotest.failf "bad allocation: %s" (String.concat "; " es));
  Alcotest.(check bool) "at least the density bound" true
    (ra.Regalloc.registers_used >= ra.Regalloc.density_lower_bound)

let test_regalloc_interval_count () =
  let s = schedule_of (dot_product ()) in
  let ra = Regalloc.allocate s in
  let mve = Mve.expand s in
  Alcotest.(check int) "one interval per range per copy"
    (mve.Mve.unroll * List.length mve.Mve.ranges)
    (List.length ra.Regalloc.intervals)

let test_regalloc_live_in_unassigned () =
  let s = schedule_of (dot_product ()) in
  let ra = Regalloc.allocate s in
  Alcotest.(check bool) "live-ins are not kernel-allocated" true
    (Regalloc.physical ra ~reg:999 ~copy:0 = None)

let test_regalloc_near_bound () =
  let s = schedule_of (dot_product ()) in
  let ra = Regalloc.allocate s in
  (* Greedy circular-arc colouring stays close to the density bound. *)
  Alcotest.(check bool) "within 2x of the bound" true
    (ra.Regalloc.registers_used <= max 1 (2 * ra.Regalloc.density_lower_bound))

let prop_regalloc_valid =
  QCheck.Test.make ~count:40 ~name:"regalloc: valid on random loops"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 23 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      if Ims_ir.Ddg.n_real ddg > 40 then true
      else
        match (Ims.modulo_schedule ddg).Ims.schedule with
        | None -> false
        | Some s -> Regalloc.verify (Regalloc.allocate s) = Ok ())

let pipeline_extension_tests2 =
  [
    Alcotest.test_case "tradeoff: break-even" `Quick test_tradeoff_break_even;
    Alcotest.test_case "tradeoff: speedup grows" `Quick test_tradeoff_speedup_grows;
    Alcotest.test_case "tradeoff: formula" `Quick test_tradeoff_formula;
    Alcotest.test_case "regalloc: verifies" `Quick test_regalloc_verifies;
    Alcotest.test_case "regalloc: interval count" `Quick
      test_regalloc_interval_count;
    Alcotest.test_case "regalloc: live-ins" `Quick test_regalloc_live_in_unassigned;
    Alcotest.test_case "regalloc: near bound" `Quick test_regalloc_near_bound;
    QCheck_alcotest.to_alcotest prop_regalloc_valid;
  ]


(* --- Semantic interpreter --------------------------------------------------------- *)

let test_interp_sequential_deterministic () =
  let ddg = dot_product () in
  let a = Interp.run_sequential ddg ~trip:10 in
  let b = Interp.run_sequential ddg ~trip:10 in
  Alcotest.(check bool) "same seed, same outcome" true (Interp.equivalent a b);
  let c = Interp.run_sequential ~seed:7 ddg ~trip:10 in
  Alcotest.(check bool) "different seed differs" false (Interp.equivalent a c)

let test_interp_reduction_value () =
  (* s = sum of (x_i)^2 where x_i are loads: check the reduction actually
     accumulates (final differs from any single term). *)
  let ddg = dot_product () in
  let o = Interp.run_sequential ddg ~trip:5 in
  Alcotest.(check bool) "some finals" true (o.Interp.finals <> []);
  Alcotest.(check bool) "memory untouched (no stores)" true (o.Interp.memory = [])

let test_interp_pipelined_equals_sequential () =
  let s = schedule_of (dot_product ()) in
  match Interp.check ~trip:25 s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_interp_detects_broken_schedule () =
  (* Swap the schedule so the fmul issues before its load completes by
     rebuilding with all times equal: dependences break, values change. *)
  let ddg = dot_product () in
  let s = schedule_of ddg in
  if Interp.supported ddg then begin
    let entries =
      Array.init (Ims_ir.Ddg.n_total ddg) (fun i ->
          { Schedule.time = (if i = 3 then 0 else Schedule.time s i); alt = Schedule.alt s i })
    in
    let broken = Schedule.make ddg ~ii:s.Schedule.ii ~entries in
    (* The fmul (op 3) now issues at cycle 0, before its load: the
       pipelined replay must read a stale instance and diverge. *)
    let a = Interp.run_sequential ddg ~trip:20 in
    let b = Interp.run_pipelined broken ~trip:20 in
    Alcotest.(check bool) "divergence detected" false (Interp.equivalent a b)
  end

let test_interp_store_loop_memory () =
  (* sscal stores a*x over x: memory cells must hold scaled defaults. *)
  let ddg = Ims_workloads.Kernels.build machine "sscal" in
  let o = Interp.run_sequential ddg ~trip:8 in
  Alcotest.(check int) "eight cells written" 8 (List.length o.Interp.memory)

let test_interp_unsupported_partial_defs () =
  (* A register written only under a one-sided predicate that is
     dynamically false (pred_reset of a non-zero live-in): the register
     never gets an instance, so overlapped replay is not supported. *)
  let b = Builder.create machine in
  let c = Builder.vreg b "c" and p = Builder.vreg b "p" in
  let x = Builder.vreg b "x" in
  ignore (Builder.add b ~opcode:"pred_reset" ~dsts:[ p ] ~srcs:[ (c, 0) ] ());
  ignore (Builder.add b ~pred:(p, 0) ~opcode:"copy" ~dsts:[ x ] ~srcs:[ (c, 0) ] ());
  Alcotest.(check bool) "partial defs unsupported" false
    (Interp.supported (Builder.finish b))

let test_interp_check_skips_unsupported () =
  let ddg = Ims_workloads.Lfk.build machine "lfk13" in
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      Alcotest.(check bool) "unsupported loop" false (Interp.supported ddg);
      Alcotest.(check bool) "check passes vacuously" true (Interp.check s = Ok ())

let prop_interp_equivalence =
  QCheck.Test.make ~count:40
    ~name:"interp: pipelined execution computes sequential values"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 29 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      if Ims_ir.Ddg.n_real ddg > 60 then true
      else
        match (Ims.modulo_schedule ddg).Ims.schedule with
        | None -> false
        | Some s -> Interp.check s = Ok ())

let interp_tests =
  [
    Alcotest.test_case "interp: deterministic" `Quick
      test_interp_sequential_deterministic;
    Alcotest.test_case "interp: reduction values" `Quick
      test_interp_reduction_value;
    Alcotest.test_case "interp: pipelined = sequential" `Quick
      test_interp_pipelined_equals_sequential;
    Alcotest.test_case "interp: detects broken schedule" `Quick
      test_interp_detects_broken_schedule;
    Alcotest.test_case "interp: store memory" `Quick test_interp_store_loop_memory;
    Alcotest.test_case "interp: partial defs unsupported" `Quick
      test_interp_unsupported_partial_defs;
    Alcotest.test_case "interp: check skips unsupported" `Quick
      test_interp_check_skips_unsupported;
    QCheck_alcotest.to_alcotest prop_interp_equivalence;
  ]


(* --- WHILE-loops and early exits --------------------------------------------------- *)

let search_loop ?(guard = false) () =
  let k = Ims_workloads.Kernel_dsl.create machine in
  let ax = Ims_workloads.Kernel_dsl.addr k "ax" in
  let x, _ = Ims_workloads.Kernel_dsl.load k ax "x[i]" in
  let key = Ims_workloads.Kernel_dsl.reg k "key" in
  let c = Ims_workloads.Kernel_dsl.binop k "fcmp" (x, 0) (key, 0) "x < key" in
  let b = Ims_workloads.Kernel_dsl.builder k in
  let exit_op =
    Builder.add b ~tag:"exit if found" ~opcode:"branch" ~dsts:[] ~srcs:[ (c, 0) ] ()
  in
  let aout = Ims_workloads.Kernel_dsl.addr k "aout" in
  ignore (Ims_workloads.Kernel_dsl.store k aout (x, 0) "out[i] = x");
  Ims_workloads.Kernel_dsl.loop_control k;
  let ddg = Ims_workloads.Kernel_dsl.finish k in
  let ddg = if guard then Exit_schema.guard_stores ddg ~exit_op else ddg in
  (ddg, exit_op)

let test_exit_classify_do () =
  let ddg = Ims_workloads.Lfk.build machine "lfk01" in
  Alcotest.(check bool) "counter loop is a DO loop" true
    (Exit_schema.classify ddg = Exit_schema.Do_loop)

let test_exit_classify_while () =
  (* Loop control reads a loaded value: list-traversal flavour. *)
  let b = Builder.create machine in
  let p = Builder.vreg b "p" and c = Builder.vreg b "c" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ p ] ~srcs:[ (p, 1) ] ());
  ignore (Builder.add b ~opcode:"fcmp" ~dsts:[ c ] ~srcs:[ (p, 0); (p, 0) ] ());
  ignore (Builder.add b ~opcode:"branch" ~dsts:[] ~srcs:[ (c, 0) ] ());
  Alcotest.(check bool) "data-dependent continue is a WHILE loop" true
    (Exit_schema.classify (Builder.finish b) = Exit_schema.While_loop)

let test_exit_classify_early_exit () =
  let ddg, _ = search_loop () in
  Alcotest.(check bool) "two branches" true
    (Exit_schema.classify ddg = Exit_schema.Early_exit)

let test_exit_guard_removes_hazards () =
  let unguarded, exit_op = search_loop () in
  let guarded, exit_op' = search_loop ~guard:true () in
  let sched d =
    match (Ims.modulo_schedule d).Ims.schedule with
    | Some s -> s
    | None -> Alcotest.fail "no schedule"
  in
  let s0 = sched unguarded and s1 = sched guarded in
  Alcotest.(check bool) "unguarded schedule speculates a store" true
    (Exit_schema.speculation_hazards s0 ~exit_op <> []);
  Alcotest.(check (list int)) "guarded schedule is hazard free" []
    (Exit_schema.speculation_hazards s1 ~exit_op:exit_op');
  Alcotest.(check bool) "guarding costs no II here" true
    (s1.Schedule.ii <= s0.Schedule.ii + 1)

let test_exit_plan_epilogue () =
  let ddg, exit_op = search_loop ~guard:true () in
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      let p = Exit_schema.plan s ~exit_op in
      Alcotest.(check bool) "epilogue non-empty" true (p.Exit_schema.code_ops > 0);
      Alcotest.(check int) "plan counts its ops" p.Exit_schema.code_ops
        (List.length p.Exit_schema.epilogue);
      (* Everything owed is from an older or current iteration. *)
      Alcotest.(check bool) "ages non-negative" true
        (List.for_all (fun (_, age) -> age >= 0) p.Exit_schema.epilogue);
      (* And issues after the exit fired, in its own frame. *)
      List.iter
        (fun (op, age) ->
          Alcotest.(check bool) "after the exit" true
            (Schedule.time s op - (age * s.Schedule.ii)
            > Schedule.time s exit_op))
        p.Exit_schema.epilogue

let test_exit_emit_mentions_drain () =
  let ddg, exit_op = search_loop ~guard:true () in
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      let text = Exit_schema.emit s ~exit_op in
      Alcotest.(check bool) "mentions the epilogue" true
        (contains text "exit epilogue")

let exit_schema_tests =
  [
    Alcotest.test_case "exit: classify do" `Quick test_exit_classify_do;
    Alcotest.test_case "exit: classify while" `Quick test_exit_classify_while;
    Alcotest.test_case "exit: classify early exit" `Quick
      test_exit_classify_early_exit;
    Alcotest.test_case "exit: guard removes hazards" `Quick
      test_exit_guard_removes_hazards;
    Alcotest.test_case "exit: epilogue plan" `Quick test_exit_plan_epilogue;
    Alcotest.test_case "exit: emit" `Quick test_exit_emit_mentions_drain;
  ]


(* --- Register-pressure-limited scheduling ---------------------------------------- *)

let test_pressure_unconstrained_fits () =
  let ddg = dot_product () in
  match Pressure.schedule ddg ~max_rotating:256 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "no ii paid with a huge file" 0 r.Pressure.ii_paid;
      Alcotest.(check bool) "fits" true
        (r.Pressure.allocation.Rotreg.file_size <= 256)

let test_pressure_pays_ii_for_small_file () =
  let ddg = dot_product () in
  let unconstrained =
    match Pressure.schedule ddg ~max_rotating:256 with
    | Ok r -> r.Pressure.allocation.Rotreg.file_size
    | Error e -> Alcotest.fail e
  in
  (* Just under the unconstrained demand: the driver must either raise
     the II or (via compaction) still fit — never return an over-budget
     allocation. *)
  match Pressure.schedule ddg ~max_rotating:(unconstrained - 2) with
  | Ok r ->
      Alcotest.(check bool) "within budget" true
        (r.Pressure.allocation.Rotreg.file_size <= unconstrained - 2);
      Alcotest.(check bool) "schedule still valid" true
        (Schedule.verify r.Pressure.schedule = Ok ())
  | Error _ -> ()

let test_pressure_impossible_reports () =
  let ddg = dot_product () in
  match Pressure.schedule ~max_retries:4 ddg ~max_rotating:1 with
  | Ok _ -> Alcotest.fail "one register cannot hold this loop"
  | Error e -> Alcotest.(check bool) "explains itself" true (String.length e > 0)

let test_pressure_demand_profile_monotoneish () =
  let ddg = dot_product () in
  let prof = Pressure.demand_profile ddg ~ii_range:(4, 10) in
  Alcotest.(check bool) "profile non-empty" true (prof <> []);
  let first = snd (List.hd prof) in
  let last = snd (List.nth prof (List.length prof - 1)) in
  Alcotest.(check bool) "pressure does not grow with ii" true (last <= first)

let pressure_tests =
  [
    Alcotest.test_case "pressure: unconstrained" `Quick
      test_pressure_unconstrained_fits;
    Alcotest.test_case "pressure: pays ii" `Quick
      test_pressure_pays_ii_for_small_file;
    Alcotest.test_case "pressure: impossible" `Quick test_pressure_impossible_reports;
    Alcotest.test_case "pressure: demand profile" `Quick
      test_pressure_demand_profile_monotoneish;
  ]


(* --- Register classes (the Cydra 5 split files) ----------------------------------- *)

let test_regclass_by_def () =
  let ddg = Ims_workloads.Lfk.build machine "lfk24" in
  (* Address stream is Address, predicate defs Predicate, the min is Data. *)
  let classes =
    List.concat_map
      (fun i -> (Ims_ir.Ddg.op ddg i).Ims_ir.Op.dsts)
      (Ims_ir.Ddg.real_ids ddg)
    |> List.sort_uniq compare
    |> List.map (fun r -> Regclass.of_reg ddg r)
  in
  Alcotest.(check bool) "has address regs" true (List.mem Regclass.Address classes);
  Alcotest.(check bool) "has predicate regs" true
    (List.mem Regclass.Predicate classes);
  Alcotest.(check bool) "has data regs" true (List.mem Regclass.Data classes)

let test_regclass_live_in_by_use () =
  let b = Builder.create machine in
  let a = Builder.vreg b "a" and v = Builder.vreg b "v" in
  let x = Builder.vreg b "x" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[ (a, 0) ] ());
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ Builder.vreg b "y" ] ~srcs:[ (x, 0); (v, 0) ] ());
  let ddg = Builder.finish b in
  Alcotest.(check bool) "load address live-in is Address" true
    (Regclass.of_reg ddg (Builder.reg_id b a) = Regclass.Address);
  Alcotest.(check bool) "arith live-in is Data" true
    (Regclass.of_reg ddg (Builder.reg_id b v) = Regclass.Data)

let test_rotreg_classed_partition () =
  let s = schedule_of (Ims_workloads.Lfk.build machine "lfk24") in
  let files = Rotreg.allocate_by_class s in
  let whole = Rotreg.allocate s in
  (* Each class verifies independently, and the class files partition the
     variants: their sizes sum to at least... each block also appears in
     the monolithic file, so totals match block-for-block. *)
  List.iter
    (fun (_, alloc) ->
      match Rotreg.verify alloc with
      | Ok () -> ()
      | Error es -> Alcotest.failf "classed file invalid: %s" (List.hd es))
    files;
  let classed_total =
    List.fold_left (fun acc (_, a) -> acc + a.Rotreg.file_size) 0 files
  in
  (* Splitting by class drops cross-class vacating constraints but each
     file pays its own wraparound floor; totals stay in the same
     ballpark as the monolithic file. *)
  Alcotest.(check bool)
    (Printf.sprintf "classed total %d ~ monolithic %d" classed_total
       whole.Rotreg.file_size)
    true
    (classed_total <= whole.Rotreg.file_size + (2 * List.length files));
  Alcotest.(check bool) "at least two classes in a predicated loop" true
    (List.length files >= 2)

let regclass_tests =
  [
    Alcotest.test_case "regclass: by definition" `Quick test_regclass_by_def;
    Alcotest.test_case "regclass: live-ins by use" `Quick
      test_regclass_live_in_by_use;
    Alcotest.test_case "rotreg: classed partition" `Quick
      test_rotreg_classed_partition;
  ]


(* --- Finite-register replays (MVE and rotating) ----------------------------------- *)

let test_replay_mve_equals_sequential () =
  let ddg = dot_product () in
  let s = schedule_of ddg in
  let trip = (3 * Schedule.stage_count s) + 5 in
  Alcotest.(check bool) "mve replay agrees" true
    (Interp.equivalent
       (Interp.run_sequential ddg ~trip)
       (Interp.run_mve s ~trip))

let test_replay_rotating_equals_sequential () =
  let ddg = dot_product () in
  let s = schedule_of ddg in
  let trip = (3 * Schedule.stage_count s) + 5 in
  Alcotest.(check bool) "rotating replay agrees" true
    (Interp.equivalent
       (Interp.run_sequential ddg ~trip)
       (Interp.run_rotating s ~trip))

let prop_replays_agree =
  QCheck.Test.make ~count:30
    ~name:"interp: mve and rotating replays match sequential execution"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 47 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      if Ims_ir.Ddg.n_real ddg > 50 || not (Interp.supported ddg) then true
      else
        match (Ims.modulo_schedule ddg).Ims.schedule with
        | None -> false
        | Some s ->
            let trip = (3 * Schedule.stage_count s) + 5 in
            let a = Interp.run_sequential ddg ~trip in
            Interp.equivalent a (Interp.run_mve s ~trip)
            && Interp.equivalent a (Interp.run_rotating s ~trip))

let replay_tests =
  [
    Alcotest.test_case "replay: mve" `Quick test_replay_mve_equals_sequential;
    Alcotest.test_case "replay: rotating" `Quick
      test_replay_rotating_equals_sequential;
    QCheck_alcotest.to_alcotest prop_replays_agree;
  ]


(* --- Exit-aware semantic replay ---------------------------------------------------- *)

(* A search-style loop whose exit fires after ~10 iterations: a counter
   climbs by 1e5 per iteration from its preload toward the next
   live-in's base (one megabyte up). *)
let exit_loop ?(guard = false) () =
  let b = Builder.create machine in
  let cnt = Builder.vreg b "cnt" in
  let limit = Builder.vreg b "limit" in
  let c = Builder.vreg b "c" in
  ignore
    (Builder.add b ~opcode:"aadd" ~imm:100000.0 ~dsts:[ cnt ]
       ~srcs:[ (cnt, 1) ] ());
  ignore
    (Builder.add b ~opcode:"fcmp" ~dsts:[ c ]
       ~srcs:[ (limit, 0); (cnt, 0) ]
       ());
  (* Route the decision through a loaded (positive) factor: the value is
     unchanged as a truth value but the exit now resolves a full load
     latency late — giving an unguarded schedule room to speculate the
     store below. *)
  let aw = Builder.vreg b "aw" and w = Builder.vreg b "w" in
  let cx = Builder.vreg b "cx" in
  ignore (Builder.add b ~opcode:"aadd" ~imm:24.0 ~dsts:[ aw ] ~srcs:[ (aw, 3) ] ());
  ignore (Builder.add b ~opcode:"load" ~dsts:[ w ] ~srcs:[ (aw, 0) ] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ cx ] ~srcs:[ (c, 0); (w, 0) ] ());
  let exit_op =
    Builder.add b ~opcode:"branch" ~dsts:[] ~srcs:[ (cx, 0) ] ()
  in
  let aout = Builder.vreg b "aout" and payload = Builder.vreg b "payload" in
  ignore (Builder.add b ~opcode:"aadd" ~imm:24.0 ~dsts:[ aout ] ~srcs:[ (aout, 3) ] ());
  ignore
    (Builder.add b ~opcode:"store" ~dsts:[] ~srcs:[ (aout, 0); (payload, 0) ] ());
  let ddg = Builder.finish b in
  let ddg = if guard then Exit_schema.guard_stores ddg ~exit_op else ddg in
  (ddg, exit_op)

let test_exit_replay_sequential_exits () =
  let ddg, exit_op = exit_loop () in
  let o, x = Interp.run_sequential_with_exit ddg ~exit_op ~max_trip:50 in
  Alcotest.(check bool)
    (Printf.sprintf "exits mid-run (iteration %d)" x)
    true
    (x > 2 && x < 40);
  (* The store follows the exit in program order, so the exiting
     iteration does not store: one cell per full iteration. *)
  Alcotest.(check int) "one store per full iteration" x
    (List.length o.Interp.memory)

let test_exit_replay_guarded_matches () =
  let ddg, exit_op = exit_loop ~guard:true () in
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      Alcotest.(check (list int)) "guarded: no hazards" []
        (Exit_schema.speculation_hazards s ~exit_op);
      let a, xa = Interp.run_sequential_with_exit ddg ~exit_op ~max_trip:50 in
      let b, xb = Interp.run_pipelined_with_exit s ~exit_op ~max_trip:50 in
      Alcotest.(check int) "same exit iteration" xa xb;
      Alcotest.(check bool) "same memory and finals" true (Interp.equivalent a b)

let test_exit_replay_hazardous_diverges () =
  let ddg, exit_op = exit_loop () in
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      Alcotest.(check bool) "unguarded schedule speculates stores" true
        (Exit_schema.speculation_hazards s ~exit_op <> []);
      let a, _ = Interp.run_sequential_with_exit ddg ~exit_op ~max_trip:50 in
      let b, _ = Interp.run_pipelined_with_exit s ~exit_op ~max_trip:50 in
      (* The speculative stores of squashed iterations committed. *)
      Alcotest.(check bool) "extra memory traffic detected" false
        (Interp.equivalent a b)

let exit_replay_tests =
  [
    Alcotest.test_case "exit replay: sequential" `Quick
      test_exit_replay_sequential_exits;
    Alcotest.test_case "exit replay: guarded matches" `Quick
      test_exit_replay_guarded_matches;
    Alcotest.test_case "exit replay: hazards diverge" `Quick
      test_exit_replay_hazardous_diverges;
  ]


(* --- Codegen size accounting -------------------------------------------------------- *)

let emitted_ops text =
  let emitted = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let rec cnt i =
           if i + 1 >= String.length line then ()
           else if line.[i] = ' ' && line.[i + 1] = '[' then begin
             incr emitted;
             cnt (i + 2)
           end
           else cnt (i + 1)
         in
         cnt 0);
  !emitted

let test_codegen_mve_size_accounting () =
  (* The code_size formula must equal the operations actually emitted
     (prologue + unrolled kernel + epilogue). *)
  List.iter
    (fun name ->
      let ddg = Ims_workloads.Lfk.build machine name in
      match (Ims.modulo_schedule ddg).Ims.schedule with
      | None -> ()
      | Some s ->
          Alcotest.(check int)
            (name ^ " emitted = formula")
            (Codegen.code_size Codegen.Mve s)
            (emitted_ops (Codegen.emit Codegen.Mve s)))
    [ "lfk01"; "lfk05"; "lfk09"; "lfk12"; "lfk24" ]

let codegen_size_tests =
  [
    Alcotest.test_case "codegen: mve size accounting" `Quick
      test_codegen_mve_size_accounting;
  ]

let tests =
  ( "pipeline",
    [
      Alcotest.test_case "lifetime: covers uses" `Quick test_lifetime_covers_uses;
      Alcotest.test_case "lifetime: long latency" `Quick
        test_lifetime_long_latency_needs_copies;
      Alcotest.test_case "lifetime: loop carried" `Quick
        test_lifetime_loop_carried_extends;
      Alcotest.test_case "mve: unroll factor" `Quick test_mve_unroll_factor;
      Alcotest.test_case "mve: rename wraps" `Quick test_mve_rename_wraps;
      Alcotest.test_case "mve: live-in name" `Quick test_mve_live_in_keeps_name;
      Alcotest.test_case "mve: code growth" `Quick test_mve_code_growth;
      Alcotest.test_case "rotreg: verifies" `Quick test_rotreg_allocation_verifies;
      Alcotest.test_case "rotreg: vacating distances" `Quick
        test_rotreg_vacating_distances;
      Alcotest.test_case "rotreg: reference" `Quick test_rotreg_reference_syntax;
      Alcotest.test_case "rotreg: live-in" `Quick test_rotreg_live_in_reference;
      Alcotest.test_case "codegen: rotating size" `Quick
        test_codegen_rotating_no_expansion;
      Alcotest.test_case "codegen: mve expands" `Quick test_codegen_mve_expands;
      Alcotest.test_case "codegen: kernel section" `Quick
        test_codegen_listing_mentions_kernel;
      Alcotest.test_case "codegen: prologue/epilogue" `Quick
        test_codegen_mve_listing_has_prologue;
      Alcotest.test_case "simulator: formula" `Quick test_simulator_matches_formula;
      Alcotest.test_case "simulator: overlap" `Quick test_simulator_overlap;
      Alcotest.test_case "simulator: catches bad schedule" `Quick
        test_simulator_catches_bad_schedule;
      Alcotest.test_case "simulator: early-read diagnostic" `Quick
        test_simulator_reports_early_read;
      Alcotest.test_case "simulator: oversubscription diagnostic" `Quick
        test_simulator_reports_oversubscription;
      Alcotest.test_case "simulator: utilization" `Quick
        test_simulator_utilization_sane;
      QCheck_alcotest.to_alcotest prop_pipeline_end_to_end;
    ]
    @ pipeline_extension_tests
    @ pipeline_extension_tests2 @ interp_tests @ exit_schema_tests
    @ pressure_tests @ regclass_tests @ replay_tests @ exit_replay_tests
    @ codegen_size_tests )
