(* The serve subsystem: the content-hash wire format, the bounded
   intake queue, frame codec, protocol codec, the report-body splice
   law, and the persistent schedule cache (warm reopen, torn tail,
   eviction, foreign-file refusal). *)

open Ims_obs
module Exec = Ims_exec
module Serve = Ims_serve

let tmp_file name =
  let path = Filename.temp_file "ims_serve_test" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* --- content hash ----------------------------------------------------------- *)

(* The digest is a wire format: journals and schedule caches in the
   wild are keyed by it.  These pins fail if anyone changes the
   definition (hash function, separator, joining) in any way. *)
let test_content_hash_pinned () =
  Alcotest.(check string)
    "fixed corpus" "3929b7d4ba1203117a22960e040749c2"
    (Exec.Content_hash.of_parts [ "cydra5"; "2."; "1000"; "loop body" ]);
  Alcotest.(check string)
    "empty" "d41d8cd98f00b204e9800998ecf8427e"
    (Exec.Content_hash.of_parts []);
  Alcotest.(check string)
    "one part" "abcdf51414383cb4ddb47c092f585c46"
    (Exec.Content_hash.of_string "one part")

let test_content_hash_part_boundaries () =
  (* The NUL separator makes part boundaries significant: ["ab";"c"]
     and ["a";"bc"] must not collide by concatenation. *)
  Alcotest.(check string)
    "ab|c" "cf1aa1426d75f0e4c1a49da3b28808ef"
    (Exec.Content_hash.of_parts [ "ab"; "c" ]);
  Alcotest.(check string)
    "a|bc" "a5f5d1ebd362d6639389a7e1fede534d"
    (Exec.Content_hash.of_parts [ "a"; "bc" ]);
  Alcotest.(check bool)
    "of_string = singleton of_parts" true
    (Exec.Content_hash.of_string "xyz"
    = Exec.Content_hash.of_parts [ "xyz" ])

let test_journal_manifest_hash_is_content_hash () =
  Alcotest.(check string)
    "one definition"
    (Exec.Content_hash.of_parts [ "m"; "flags"; "corpus" ])
    (Exec.Journal.manifest_hash [ "m"; "flags"; "corpus" ])

(* --- intake ------------------------------------------------------------------ *)

let test_intake_backpressure () =
  let q = Exec.Intake.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Exec.Intake.capacity q);
  Alcotest.(check bool) "add 1" true (Exec.Intake.try_add q 1);
  Alcotest.(check bool) "add 2" true (Exec.Intake.try_add q 2);
  Alcotest.(check bool) "full" false (Exec.Intake.try_add q 3);
  Alcotest.(check int) "depth" 2 (Exec.Intake.depth q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Exec.Intake.take q);
  Alcotest.(check bool) "space again" true (Exec.Intake.try_add q 4);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Exec.Intake.take q);
  Alcotest.(check (option int)) "fifo 3" (Some 4) (Exec.Intake.take q)

let test_intake_close_drains () =
  let q = Exec.Intake.create ~capacity:4 in
  ignore (Exec.Intake.try_add q "a");
  ignore (Exec.Intake.try_add q "b");
  Exec.Intake.close q;
  Alcotest.(check bool) "closed admits nothing" false
    (Exec.Intake.try_add q "c");
  Alcotest.(check (option string)) "drains a" (Some "a") (Exec.Intake.take q);
  Alcotest.(check (option string)) "drains b" (Some "b") (Exec.Intake.take q);
  Alcotest.(check (option string)) "then eos" None (Exec.Intake.take q);
  Exec.Intake.close q (* idempotent *)

let test_intake_wakes_blocked_taker () =
  let q = Exec.Intake.create ~capacity:1 in
  let taker = Domain.spawn (fun () -> Exec.Intake.take q) in
  Unix.sleepf 0.05;
  ignore (Exec.Intake.try_add q 42);
  Alcotest.(check (option int)) "woken with the job" (Some 42)
    (Domain.join taker);
  let eos = Domain.spawn (fun () -> Exec.Intake.take q) in
  Unix.sleepf 0.05;
  Exec.Intake.close q;
  Alcotest.(check (option int)) "woken by close" None (Domain.join eos)

(* --- wire codec -------------------------------------------------------------- *)

let test_wire_roundtrip () =
  let d = Serve.Wire.decoder () in
  let payloads = [ "{}"; "payload\nwith\nnewlines"; ""; "last" ] in
  Serve.Wire.feed d (String.concat "" (List.map Serve.Wire.frame payloads));
  List.iter
    (fun expect ->
      match Serve.Wire.next d with
      | Ok (Some got) -> Alcotest.(check string) "payload" expect got
      | Ok None -> Alcotest.fail "frame should be complete"
      | Error e -> Alcotest.fail e)
    payloads;
  Alcotest.(check bool) "drained" true (Serve.Wire.next d = Ok None)

let test_wire_incremental () =
  let d = Serve.Wire.decoder () in
  let frame = Serve.Wire.frame "abc" in
  String.iteri
    (fun i c ->
      (* Before the last byte arrives the decoder must keep waiting. *)
      if i < String.length frame - 1 then begin
        Serve.Wire.feed d (String.make 1 c);
        Alcotest.(check bool)
          (Printf.sprintf "incomplete at %d" i)
          true
          (Serve.Wire.next d = Ok None)
      end
      else Serve.Wire.feed d (String.make 1 c))
    frame;
  Alcotest.(check bool) "complete" true (Serve.Wire.next d = Ok (Some "abc"))

let test_wire_rejects_corruption () =
  let bad_header = Serve.Wire.decoder () in
  Serve.Wire.feed bad_header "notalength\n{}\n";
  (match Serve.Wire.next bad_header with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric header must poison the stream");
  let bad_guard = Serve.Wire.decoder () in
  (* Length says 2 but the guard position holds 'x', not '\n'. *)
  Serve.Wire.feed bad_guard "2\nabx";
  (match Serve.Wire.next bad_guard with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing frame guard must poison the stream");
  let headerless = Serve.Wire.decoder () in
  Serve.Wire.feed headerless (String.make 64 'j');
  match Serve.Wire.next headerless with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a headerless stream must be detected"

(* --- protocol ---------------------------------------------------------------- *)

let test_wire_truncated_eof () =
  (* EOF with a partial frame buffered must be an explicit error — the
     resilient client replays on it; silently dropping the tear would
     lose a response. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frame = Serve.Wire.frame "torn payload" in
  ignore
    (Unix.write_substring a frame 0 (String.length frame - 3));
  Unix.close a;
  let d = Serve.Wire.decoder () in
  (match Serve.Wire.read_frame b d with
  | Error e ->
      Alcotest.(check bool)
        "names the tear" true
        (String.length e >= 9 && String.sub e 0 9 = "truncated")
  | Ok None -> Alcotest.fail "EOF mid-frame must not look like a clean close"
  | Ok (Some _) -> Alcotest.fail "the frame was incomplete");
  Unix.close b;
  (* A clean close between frames is still Ok None. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let d = Serve.Wire.decoder () in
  Serve.Wire.write_frame a "whole";
  Unix.close a;
  (match Serve.Wire.read_frame b d with
  | Ok (Some p) -> Alcotest.(check string) "whole frame" "whole" p
  | _ -> Alcotest.fail "complete frame expected");
  (match Serve.Wire.read_frame b d with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "stream was drained"
  | Error e -> Alcotest.fail ("clean EOF misreported: " ^ e));
  Unix.close b

let test_wire_large_frame () =
  (* A max_payload-sized frame arriving in mid-sized chunks must decode
     (and do so in amortized linear time — this test is also the
     regression guard for the quadratic string-concat feed). *)
  let payload =
    String.init Serve.Wire.max_payload (fun i -> Char.chr (33 + (i mod 94)))
  in
  let frame = Serve.Wire.frame payload in
  let d = Serve.Wire.decoder () in
  let chunk = 65536 in
  let n = String.length frame in
  let i = ref 0 in
  let got = ref None in
  while !i < n do
    let k = min chunk (n - !i) in
    Serve.Wire.feed d (String.sub frame !i k);
    i := !i + k;
    match Serve.Wire.next d with
    | Ok (Some p) -> got := Some p
    | Ok None -> ()
    | Error e -> Alcotest.fail e
  done;
  (match !got with
  | Some p -> Alcotest.(check bool) "payload intact" true (p = payload)
  | None -> Alcotest.fail "large frame never completed");
  (* One byte past the cap: rejected from the header alone, before any
     allocation of the payload. *)
  let d = Serve.Wire.decoder () in
  Serve.Wire.feed d (Printf.sprintf "%d\n" (Serve.Wire.max_payload + 1));
  match Serve.Wire.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length header must poison the stream"

let prop_wire_decoder_total =
  QCheck.Test.make ~count:400
    ~name:"serve wire: decoder is total on arbitrary bytes"
    QCheck.(small_list (string_of_size Gen.small_nat))
    (fun chunks ->
      let d = Serve.Wire.decoder () in
      let alive = ref true in
      List.iter
        (fun chunk ->
          if !alive then begin
            Serve.Wire.feed d chunk;
            (* Termination bound: each complete frame consumes >= 3
               bytes, so draining can't loop more than bytes-fed
               times. *)
            let rec drain budget =
              if budget < 0 then
                Alcotest.fail "decoder failed to terminate"
              else
                match Serve.Wire.next d with
                | Ok (Some _) -> drain (budget - 1)
                | Ok None -> ()
                | Error _ -> alive := false
            in
            drain (String.length chunk + 8)
          end)
        chunks;
      true)

let prop_wire_chunked_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"serve wire: clean streams roundtrip under any chunking"
    QCheck.(pair (small_list (string_of_size Gen.small_nat)) small_nat)
    (fun (payloads, seed) ->
      let stream = String.concat "" (List.map Serve.Wire.frame payloads) in
      let rng = Random.State.make [| seed |] in
      let d = Serve.Wire.decoder () in
      let got = ref [] in
      let i = ref 0 in
      let n = String.length stream in
      while !i < n do
        let k = min (1 + Random.State.int rng 7) (n - !i) in
        Serve.Wire.feed d (String.sub stream !i k);
        i := !i + k;
        let rec drain () =
          match Serve.Wire.next d with
          | Ok (Some p) ->
              got := p :: !got;
              drain ()
          | Ok None -> ()
          | Error e -> Alcotest.fail ("clean stream poisoned: " ^ e)
        in
        drain ()
      done;
      (not (Serve.Wire.has_partial d)) && List.rev !got = payloads)

let test_protocol_roundtrip () =
  let reqs =
    [
      Serve.Protocol.Schedule
        {
          id = 7;
          name = "lfk03.loop";
          machine = "cydra5";
          budget_ratio = 2.5;
          max_delta_ii = 10;
          deadline = Some 1.5;
          dump = "op1\nop2\n";
        };
      Serve.Protocol.Stats { id = 8 };
      Serve.Protocol.Shutdown { id = 9 };
    ]
  in
  List.iter
    (fun r ->
      match Serve.Protocol.(request_of_json (request_to_json r)) with
      | Ok r' -> Alcotest.(check bool) "request roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  let resps =
    [
      Serve.Protocol.Report { id = 1; cached = true; record = "{\"x\":1}" };
      Serve.Protocol.Overloaded { id = 2; depth = 64; capacity = 64 };
      Serve.Protocol.Error { id = 3; message = "unknown machine" };
      Serve.Protocol.Bye { id = 4 };
    ]
  in
  List.iter
    (fun r ->
      match Serve.Protocol.(response_of_json (response_to_json r)) with
      | Ok r' -> Alcotest.(check bool) "response roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    resps

let test_protocol_defaults () =
  let j =
    Json.Obj
      [
        ("op", Json.String "schedule");
        ("name", Json.String "n");
        ("loop", Json.String "dump");
      ]
  in
  (match Serve.Protocol.request_of_json j with
  | Ok
      (Serve.Protocol.Schedule
         { id; machine; budget_ratio; max_delta_ii; deadline; _ }) ->
      Alcotest.(check int) "id defaults to 0" 0 id;
      Alcotest.(check string) "machine default" "cydra5" machine;
      Alcotest.(check (float 1e-9)) "budget default" 2.0 budget_ratio;
      Alcotest.(check int) "max_delta_ii default" 1000 max_delta_ii;
      Alcotest.(check bool) "no deadline" true (deadline = None)
  | Ok _ -> Alcotest.fail "decoded as the wrong op"
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "id recoverable from junk" 5
    (Serve.Protocol.request_id_of_json
       (Json.Obj [ ("id", Json.Int 5); ("op", Json.Int 3) ]))

(* --- report body / with_name ------------------------------------------------- *)

(* The byte-compatibility law the cache depends on: storing the body
   and splicing the name later must equal rendering the full line. *)
let test_with_name_law () =
  let fields (ii : int) = [ ("ii", Json.Int ii); ("f", Json.Float 0.25) ] in
  let outcomes =
    [
      Exec.Outcome.Done 42;
      Exec.Outcome.Failed { exn = "Failure(\"x\")"; backtrace = "" };
      Exec.Outcome.Timed_out { elapsed = 1.5; limit = 1.0 };
      Exec.Outcome.Cancelled { elapsed = 0.5; limit = infinity };
    ]
  in
  List.iter
    (fun outcome ->
      let extra = [ ("quarantined", Json.Bool true) ] in
      let via_line =
        Json.to_string (Exec.Report.line ~name:"a.loop" ~extra ~fields outcome)
      in
      let via_splice =
        Exec.Report.with_name ~name:"a.loop"
          (Json.to_string (Json.Obj (Exec.Report.body ~extra ~fields outcome)))
      in
      Alcotest.(check string) "line = splice(body)" via_line via_splice)
    outcomes;
  Alcotest.(check string)
    "empty body" "{\"name\":\"n\"}"
    (Exec.Report.with_name ~name:"n" "{}")

(* --- cache ------------------------------------------------------------------- *)

let test_cache_memory_roundtrip () =
  match Serve.Cache.open_ ~capacity:8 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Alcotest.(check (option string)) "miss" None (Serve.Cache.find c ~key:"k");
      Serve.Cache.add c ~key:"k" "{\"v\":1}";
      Alcotest.(check (option string))
        "hit" (Some "{\"v\":1}")
        (Serve.Cache.find c ~key:"k");
      Serve.Cache.add c ~key:"k" "{\"v\":2}";
      Alcotest.(check (option string))
        "first writer wins" (Some "{\"v\":1}")
        (Serve.Cache.find c ~key:"k");
      let s = Serve.Cache.stats c in
      Alcotest.(check int) "hits" 2 s.Serve.Cache.hits;
      Alcotest.(check int) "misses" 1 s.Serve.Cache.misses;
      Alcotest.(check int) "entries" 1 s.Serve.Cache.entries;
      Serve.Cache.close c

let test_cache_fifo_eviction () =
  match Serve.Cache.open_ ~capacity:2 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Serve.Cache.add c ~key:"a" "1";
      Serve.Cache.add c ~key:"b" "2";
      Serve.Cache.add c ~key:"c" "3";
      Alcotest.(check (option string))
        "oldest evicted" None
        (Serve.Cache.find c ~key:"a");
      Alcotest.(check (option string))
        "newer kept" (Some "2")
        (Serve.Cache.find c ~key:"b");
      let s = Serve.Cache.stats c in
      Alcotest.(check int) "evictions" 1 s.Serve.Cache.evictions;
      Serve.Cache.close c

let test_cache_persistence_roundtrip () =
  let path = tmp_file ".cache" in
  Sys.remove path;
  (match Serve.Cache.open_ ~capacity:8 ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Serve.Cache.add c ~key:"k1" "{\"ii\":3}";
      Serve.Cache.add c ~key:"k2" "{\"ii\":5}";
      Serve.Cache.close c);
  match Serve.Cache.open_ ~capacity:8 ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let s = Serve.Cache.stats c in
      Alcotest.(check int) "loaded" 2 s.Serve.Cache.loaded;
      Alcotest.(check bool) "not torn" false s.Serve.Cache.torn;
      Alcotest.(check (option string))
        "warm hit, verbatim bytes" (Some "{\"ii\":3}")
        (Serve.Cache.find c ~key:"k1");
      (* A key inserted after the reopen persists alongside the
         replayed ones. *)
      Serve.Cache.add c ~key:"k3" "{\"ii\":7}";
      Serve.Cache.close c;
      (match Serve.Cache.open_ ~capacity:8 ~path () with
      | Error e -> Alcotest.fail e
      | Ok c2 ->
          Alcotest.(check int) "all three" 3
            (Serve.Cache.stats c2).Serve.Cache.loaded;
          Serve.Cache.close c2)

let test_cache_torn_tail_truncated () =
  let path = tmp_file ".cache" in
  Sys.remove path;
  (match Serve.Cache.open_ ~capacity:8 ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Serve.Cache.add c ~key:"good" "{\"ii\":2}";
      Serve.Cache.close c);
  (* A SIGKILL mid-append leaves a final line without its newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"key\":\"torn\",\"record\":\"{}\"";
  close_out oc;
  match Serve.Cache.open_ ~capacity:8 ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let s = Serve.Cache.stats c in
      Alcotest.(check bool) "torn flagged" true s.Serve.Cache.torn;
      Alcotest.(check int) "complete entries kept" 1 s.Serve.Cache.loaded;
      Alcotest.(check (option string))
        "still hits" (Some "{\"ii\":2}")
        (Serve.Cache.find c ~key:"good");
      Alcotest.(check (option string))
        "torn entry dropped" None
        (Serve.Cache.find c ~key:"torn");
      (* The reopen truncated the torn bytes, so appends extend a
         well-formed file. *)
      Serve.Cache.add c ~key:"after" "{\"ii\":9}";
      Serve.Cache.close c;
      (match Serve.Cache.open_ ~capacity:8 ~path () with
      | Error e -> Alcotest.fail e
      | Ok c2 ->
          Alcotest.(check bool) "clean after truncation" false
            (Serve.Cache.stats c2).Serve.Cache.torn;
          Alcotest.(check int) "both survive" 2
            (Serve.Cache.stats c2).Serve.Cache.loaded;
          Serve.Cache.close c2)

let test_cache_refuses_foreign_files () =
  let path = tmp_file ".cache" in
  let write s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write "{\"kind\":\"imsc-batch-journal\",\"version\":1}\n";
  (match Serve.Cache.open_ ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a foreign kind must be refused");
  write "{\"kind\":\"imsc-schedule-cache\",\"version\":99}\n";
  (match Serve.Cache.open_ ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a newer format version must be refused");
  write "not json\n";
  match Serve.Cache.open_ ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a corrupt header must be refused"

let test_cache_concurrent_inserts () =
  match Serve.Cache.open_ ~capacity:128 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let worker seed () =
        for i = 0 to 63 do
          let key = Printf.sprintf "k%d" i in
          (* Both domains race the same keys with the same values, as
             serve workers computing the same loop do. *)
          Serve.Cache.add c ~key (Printf.sprintf "v%d" i);
          ignore (Serve.Cache.find c ~key);
          ignore seed
        done
      in
      let d1 = Domain.spawn (worker 1) and d2 = Domain.spawn (worker 2) in
      Domain.join d1;
      Domain.join d2;
      Alcotest.(check int) "one entry per key" 64
        (Serve.Cache.stats c).Serve.Cache.entries;
      Serve.Cache.close c

(* --- bounded cache: LRU, byte caps, compaction ------------------------------- *)

(* The byte-accounting units, derived behaviourally so these tests
   track the encoding instead of hardcoding it: one entry's encoded
   log-line size, and the header line's. *)
let entry_bytes key record =
  match Serve.Cache.open_ () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Serve.Cache.add c ~key record;
      let b = (Serve.Cache.stats c).Serve.Cache.bytes in
      Serve.Cache.close c;
      b

let header_bytes () =
  let path = tmp_file ".cache" in
  Sys.remove path;
  match Serve.Cache.open_ ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let b = (Serve.Cache.stats c).Serve.Cache.log_bytes in
      Serve.Cache.close c;
      b

let test_cache_lru_bump () =
  match Serve.Cache.open_ ~capacity:2 ~policy:Serve.Cache.Lru () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Serve.Cache.add c ~key:"a" "1";
      Serve.Cache.add c ~key:"b" "2";
      (* Touch [a]: under LRU that makes [b] the eviction victim —
         under FIFO (test above) the same sequence evicts [a]. *)
      ignore (Serve.Cache.find c ~key:"a");
      Serve.Cache.add c ~key:"c" "3";
      Alcotest.(check (option string))
        "bumped entry survives" (Some "1")
        (Serve.Cache.find c ~key:"a");
      Alcotest.(check (option string))
        "unused entry evicted" None
        (Serve.Cache.find c ~key:"b");
      Serve.Cache.close c

let test_cache_byte_cap () =
  let eb = entry_bytes "a" "1" in
  let hb = header_bytes () in
  (* Room for exactly two same-sized entries under the cap. *)
  match Serve.Cache.open_ ~capacity:100 ~max_bytes:(hb + (2 * eb)) () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Serve.Cache.add c ~key:"a" "1";
      Serve.Cache.add c ~key:"b" "2";
      Serve.Cache.add c ~key:"c" "3";
      let s = Serve.Cache.stats c in
      Alcotest.(check int) "byte cap holds two" 2 s.Serve.Cache.entries;
      Alcotest.(check bool)
        "live bytes under cap" true
        (s.Serve.Cache.bytes + hb <= hb + (2 * eb));
      Alcotest.(check (option string))
        "cold end evicted" None
        (Serve.Cache.find c ~key:"a");
      (* An entry alone bigger than the cap can never fit: refused,
         without evicting the residents to make room that wouldn't
         suffice anyway. *)
      Serve.Cache.add c ~key:"huge" (String.make (hb + (2 * eb)) 'x');
      Alcotest.(check (option string))
        "oversized refused" None
        (Serve.Cache.find c ~key:"huge");
      Alcotest.(check int) "residents intact" 2
        (Serve.Cache.stats c).Serve.Cache.entries;
      Serve.Cache.close c

let test_cache_compaction_equivalence () =
  let path = tmp_file ".cache" in
  Sys.remove path;
  (match Serve.Cache.open_ ~capacity:2 ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Serve.Cache.add c ~key:"a" "1";
      Serve.Cache.add c ~key:"b" "2";
      Serve.Cache.add c ~key:"c" "3" (* evicts a; its log line is garbage *);
      let before = (Serve.Cache.stats c).Serve.Cache.log_bytes in
      Alcotest.(check bool) "compaction reclaims" true (Serve.Cache.compact c);
      let s = Serve.Cache.stats c in
      Alcotest.(check bool)
        "log shrank" true
        (s.Serve.Cache.log_bytes < before);
      Alcotest.(check int)
        "log = header + live" s.Serve.Cache.log_bytes
        (header_bytes () + s.Serve.Cache.bytes);
      Alcotest.(check bool) "again is a no-op" false (Serve.Cache.compact c);
      Serve.Cache.close c);
  (* The compacted file must restart warm with identical behaviour:
     same residents, same misses, and the same next eviction victim. *)
  match Serve.Cache.open_ ~capacity:2 ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let s = Serve.Cache.stats c in
      Alcotest.(check int) "only live entries replayed" 2 s.Serve.Cache.loaded;
      Alcotest.(check bool) "no torn tail" false s.Serve.Cache.torn;
      Alcotest.(check (option string))
        "b hits" (Some "2")
        (Serve.Cache.find c ~key:"b");
      Alcotest.(check (option string))
        "c hits" (Some "3")
        (Serve.Cache.find c ~key:"c");
      Alcotest.(check (option string))
        "a stays evicted" None
        (Serve.Cache.find c ~key:"a");
      (* Eviction order survived the rewrite: b is still the cold end. *)
      Serve.Cache.add c ~key:"d" "4";
      Alcotest.(check (option string))
        "pre-compaction order preserved" None
        (Serve.Cache.find c ~key:"b");
      Alcotest.(check (option string))
        "newer entry kept" (Some "3")
        (Serve.Cache.find c ~key:"c");
      Serve.Cache.close c

let test_cache_online_compaction_bounds_log () =
  let eb = entry_bytes "k0" "v0" in
  let hb = header_bytes () in
  let cap = hb + (2 * eb) in
  let path = tmp_file ".cache" in
  Sys.remove path;
  (match Serve.Cache.open_ ~capacity:100 ~max_bytes:cap ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      for i = 0 to 9 do
        Serve.Cache.add c
          ~key:(Printf.sprintf "k%d" i)
          (Printf.sprintf "v%d" i);
        (* The disk cap is enforced online: after every insert the log
           has been compacted back under it. *)
        let s = Serve.Cache.stats c in
        Alcotest.(check bool)
          (Printf.sprintf "log bounded after insert %d" i)
          true
          (s.Serve.Cache.log_bytes <= cap)
      done;
      let s = Serve.Cache.stats c in
      Alcotest.(check bool)
        "compactions happened" true
        (s.Serve.Cache.compactions > 0);
      Alcotest.(check int) "two residents" 2 s.Serve.Cache.entries;
      Serve.Cache.close c);
  Alcotest.(check bool)
    "file itself under the cap" true
    ((Unix.stat path).Unix.st_size <= cap);
  (* And the bounded file restarts warm. *)
  match Serve.Cache.open_ ~capacity:100 ~max_bytes:cap ~path () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Alcotest.(check int) "both residents replayed" 2
        (Serve.Cache.stats c).Serve.Cache.loaded;
      Alcotest.(check (option string))
        "newest survives the restart" (Some "v9")
        (Serve.Cache.find c ~key:"k9");
      Serve.Cache.close c

(* --- chaos ------------------------------------------------------------------- *)

let test_chaos_spec_parsing () =
  (match Serve.Chaos.of_spec "seed=42,torn=0.15,garbage=0.1,sever=0.05" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Serve.Chaos.of_spec "seed=1" with
  | Ok t ->
      (* All probabilities default to 0: every draw passes. *)
      for _ = 1 to 100 do
        match Serve.Chaos.on_write t ~frame_len:64 with
        | Serve.Chaos.Pass -> ()
        | _ -> Alcotest.fail "zero-probability spec must never inject"
      done;
      Alcotest.(check int) "nothing injected" 0 (Serve.Chaos.injected t)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Serve.Chaos.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S must be rejected" bad))
    [ "torn=1.5"; "torn=0.7,sever=0.7"; "wat"; "seed=x"; "frob=0.1" ]

let test_chaos_deterministic_and_bounded () =
  let spec = "seed=7,torn=0.3,garbage=0.3,sever=0.3" in
  let draw () =
    match Serve.Chaos.of_spec spec with
    | Error e -> Alcotest.fail e
    | Ok t ->
        List.init 200 (fun i ->
            let fault = Serve.Chaos.on_write t ~frame_len:(10 + i) in
            (match fault with
            | Serve.Chaos.Torn k ->
                if k < 1 || k >= 10 + i then
                  Alcotest.fail "torn length out of frame bounds"
            | Serve.Chaos.Garbage off ->
                if off < 0 || off >= 10 + i then
                  Alcotest.fail "garbage offset out of frame bounds"
            | Serve.Chaos.Pass | Serve.Chaos.Sever -> ());
            fault)
  in
  Alcotest.(check bool)
    "same seed, same fault sequence" true
    (draw () = draw ())

(* --- supervisor backoff ------------------------------------------------------- *)

let test_backoff_doubles_to_cap () =
  let b =
    Serve.Supervisor.Backoff.create ~base:0.25 ~cap:1.0 ~healthy:30.
      ~max_restarts:10 ()
  in
  let delay () =
    match Serve.Supervisor.Backoff.on_crash b ~uptime:0.1 with
    | Serve.Supervisor.Backoff.Restart d -> d
    | Serve.Supervisor.Backoff.Give_up -> Alcotest.fail "breaker opened early"
  in
  Alcotest.(check (float 1e-9)) "first" 0.25 (delay ());
  Alcotest.(check (float 1e-9)) "doubled" 0.5 (delay ());
  Alcotest.(check (float 1e-9)) "doubled again" 1.0 (delay ());
  Alcotest.(check (float 1e-9)) "capped" 1.0 (delay ())

let test_backoff_healthy_resets_streak () =
  let b =
    Serve.Supervisor.Backoff.create ~base:0.25 ~cap:8.0 ~healthy:30.
      ~max_restarts:3 ()
  in
  ignore (Serve.Supervisor.Backoff.on_crash b ~uptime:0.1);
  ignore (Serve.Supervisor.Backoff.on_crash b ~uptime:0.1);
  Alcotest.(check int) "streak built" 2 (Serve.Supervisor.Backoff.streak b);
  (* A generation that stayed up past the healthy window forgives the
     history: the next crash is treated as the first. *)
  (match Serve.Supervisor.Backoff.on_crash b ~uptime:31. with
  | Serve.Supervisor.Backoff.Restart d ->
      Alcotest.(check (float 1e-9)) "back to base" 0.25 d
  | Serve.Supervisor.Backoff.Give_up -> Alcotest.fail "healthy uptime must reset");
  Alcotest.(check int) "streak reset" 1 (Serve.Supervisor.Backoff.streak b)

let test_backoff_circuit_breaker () =
  let b =
    Serve.Supervisor.Backoff.create ~base:0.01 ~cap:0.02 ~healthy:30.
      ~max_restarts:3 ()
  in
  for i = 1 to 3 do
    match Serve.Supervisor.Backoff.on_crash b ~uptime:0.0 with
    | Serve.Supervisor.Backoff.Restart _ -> ()
    | Serve.Supervisor.Backoff.Give_up ->
        Alcotest.fail (Printf.sprintf "breaker opened at crash %d" i)
  done;
  match Serve.Supervisor.Backoff.on_crash b ~uptime:0.0 with
  | Serve.Supervisor.Backoff.Give_up -> ()
  | Serve.Supervisor.Backoff.Restart _ ->
      Alcotest.fail "crash loop must open the breaker"

let tests =
  ( "serve",
    [
      Alcotest.test_case "content hash: pinned corpus" `Quick
        test_content_hash_pinned;
      Alcotest.test_case "content hash: part boundaries" `Quick
        test_content_hash_part_boundaries;
      Alcotest.test_case "content hash: journal uses the same definition"
        `Quick test_journal_manifest_hash_is_content_hash;
      Alcotest.test_case "intake: backpressure at the high-water mark" `Quick
        test_intake_backpressure;
      Alcotest.test_case "intake: close drains then ends" `Quick
        test_intake_close_drains;
      Alcotest.test_case "intake: blocked takers are woken" `Quick
        test_intake_wakes_blocked_taker;
      Alcotest.test_case "wire: frame roundtrip" `Quick test_wire_roundtrip;
      Alcotest.test_case "wire: byte-at-a-time reassembly" `Quick
        test_wire_incremental;
      Alcotest.test_case "wire: corruption poisons the stream" `Quick
        test_wire_rejects_corruption;
      Alcotest.test_case "wire: EOF mid-frame is a truncation error" `Quick
        test_wire_truncated_eof;
      Alcotest.test_case "wire: max_payload frame decodes, +1 rejected" `Quick
        test_wire_large_frame;
      QCheck_alcotest.to_alcotest prop_wire_decoder_total;
      QCheck_alcotest.to_alcotest prop_wire_chunked_roundtrip;
      Alcotest.test_case "protocol: request/response roundtrip" `Quick
        test_protocol_roundtrip;
      Alcotest.test_case "protocol: schedule defaults" `Quick
        test_protocol_defaults;
      Alcotest.test_case "report: with_name splice law" `Quick
        test_with_name_law;
      Alcotest.test_case "cache: memory roundtrip" `Quick
        test_cache_memory_roundtrip;
      Alcotest.test_case "cache: FIFO eviction" `Quick test_cache_fifo_eviction;
      Alcotest.test_case "cache: persistence roundtrip" `Quick
        test_cache_persistence_roundtrip;
      Alcotest.test_case "cache: torn tail truncated on reopen" `Quick
        test_cache_torn_tail_truncated;
      Alcotest.test_case "cache: foreign files refused" `Quick
        test_cache_refuses_foreign_files;
      Alcotest.test_case "cache: concurrent inserts" `Quick
        test_cache_concurrent_inserts;
      Alcotest.test_case "cache: LRU hit refreshes the entry" `Quick
        test_cache_lru_bump;
      Alcotest.test_case "cache: byte cap evicts and refuses oversize" `Quick
        test_cache_byte_cap;
      Alcotest.test_case "cache: compaction preserves behaviour" `Quick
        test_cache_compaction_equivalence;
      Alcotest.test_case "cache: online compaction bounds the log" `Quick
        test_cache_online_compaction_bounds_log;
      Alcotest.test_case "chaos: spec parsing and zero-prob pass" `Quick
        test_chaos_spec_parsing;
      Alcotest.test_case "chaos: seeded draws are deterministic" `Quick
        test_chaos_deterministic_and_bounded;
      Alcotest.test_case "supervisor: backoff doubles to the cap" `Quick
        test_backoff_doubles_to_cap;
      Alcotest.test_case "supervisor: healthy uptime resets the streak" `Quick
        test_backoff_healthy_resets_streak;
      Alcotest.test_case "supervisor: crash loop opens the breaker" `Quick
        test_backoff_circuit_breaker;
    ] )
