(* Tests for the verification stack: structural lint, the unified
   checker verdict, the mutation engine's kill guarantees and the
   graceful-degradation ladder. *)

open Ims_machine
open Ims_core
open Ims_workloads
open Ims_check

let machine = Machine.cydra5 ()

let schedule_of ddg =
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | Some s -> s
  | None -> Alcotest.fail "scheduling failed"

(* --- Lint ---------------------------------------------------------------- *)

let test_lint_clean () =
  Alcotest.(check (list string)) "machine clean" [] (Lint.machine machine);
  let ddg = Lfk.build machine "lfk07" in
  Alcotest.(check (list string)) "ddg clean" [] (Lint.ddg ddg);
  Alcotest.(check (list string))
    "schedule clean" []
    (Lint.schedule (schedule_of ddg))

let test_lint_negative_time () =
  let s = schedule_of (Lfk.build machine "lfk01") in
  let entries = Array.copy s.Schedule.entries in
  entries.(1) <- { (entries.(1)) with Schedule.time = -3 };
  Alcotest.(check bool) "negative time reported" true
    (Lint.schedule (Schedule.with_entries s entries) <> [])

let test_lint_alt_out_of_range () =
  let s = schedule_of (Lfk.build machine "lfk01") in
  let entries = Array.copy s.Schedule.entries in
  entries.(1) <- { (entries.(1)) with Schedule.alt = 99 };
  Alcotest.(check bool) "bogus alternative reported" true
    (Lint.schedule (Schedule.with_entries s entries) <> [])

(* --- The unified verdict -------------------------------------------------- *)

let test_check_all_passes_lfk () =
  List.iter
    (fun name ->
      let v = Check.all (schedule_of (Lfk.build machine name)) in
      if not (Check.passed v) then
        Alcotest.failf "%s rejected: %s" name (Check.summary v))
    Lfk.names

let test_check_pass_summary () =
  let v = Check.all (schedule_of (Lfk.build machine "lfk01")) in
  Alcotest.(check string) "summary wording"
    "all checks passed (lint, verify, simulator, interp)" (Check.summary v)

let test_check_attributes_violation_to_verify () =
  let s = schedule_of (Lfk.build machine "lfk05") in
  let entries = Array.copy s.Schedule.entries in
  entries.(1) <- { (entries.(1)) with Schedule.time = Schedule.time s 1 + 997 };
  let v = Check.all (Schedule.with_entries s entries) in
  Alcotest.(check bool) "rejected" false (Check.passed v);
  Alcotest.(check bool) "verify among the objectors" true
    (List.mem Check.Verify (Check.killed_by v))

(* --- Mutation engine ------------------------------------------------------ *)

(* Floors calibrated well under the measured rates on this subset
   (drop 67%, weaken 53%, swap 100%) so seed drift cannot flake them;
   the must-kill classes are asserted exactly. *)
let subset = [ "lfk01"; "lfk03"; "lfk07"; "lfk12"; "lfk20" ]

let sweep_subset () =
  List.concat
    (List.mapi
       (fun i name ->
         Mutate.sweep ~seed:42 ~salt:i ~per_class:3 (Lfk.build machine name))
       subset)

let test_mutants_must_kill () =
  let results = sweep_subset () in
  Alcotest.(check bool) "a real population" true (List.length results >= 80);
  Alcotest.(check int) "no escapees" 0 (List.length (Mutate.escapees results));
  List.iter
    (fun (r : Mutate.result_) ->
      if Mutate.must_kill r.cls then
        Alcotest.(check bool)
          (Mutate.class_name r.cls ^ ": designated checker fired")
          true r.expected_hit)
    results

let test_mutant_kill_floors () =
  let stats = Mutate.aggregate (sweep_subset ()) in
  let rate cls =
    let st = List.find (fun (s : Mutate.class_stats) -> s.cls = cls) stats in
    if st.mutants = 0 then 1.0
    else float_of_int st.killed /. float_of_int st.mutants
  in
  Alcotest.(check bool) "swap-slots >= 80%" true (rate Mutate.Swap_slots >= 0.8);
  Alcotest.(check bool) "drop-edge >= 30%" true (rate Mutate.Drop_edge >= 0.3);
  Alcotest.(check bool) "weaken-edge >= 30%" true
    (rate Mutate.Weaken_edge >= 0.3)

let test_mutants_deterministic () =
  let descriptions () =
    Mutate.sweep ~seed:7 ~per_class:4 (Lfk.build machine "lfk03")
    |> List.map (fun (r : Mutate.result_) -> r.description)
  in
  Alcotest.(check (list string)) "same seed, same mutants" (descriptions ())
    (descriptions ())

(* --- Degradation ladder --------------------------------------------------- *)

let test_harden_clean_pass () =
  let ddg = Lfk.build machine "lfk09" in
  let h = Fallback.harden ddg (Ims.modulo_schedule ddg) in
  Alcotest.(check bool) "not degraded" true (h.Fallback.degraded = None);
  Alcotest.(check bool) "verdict passes" true (Check.passed h.Fallback.verdict)

let test_fallback_on_budget_exhaustion () =
  (* BudgetRatio 0.1 caps the budget below the number of placements any
     attempt needs, and DeltaII 0 forbids retries at a larger II. *)
  let ddg = Lfk.build machine "lfk03" in
  let h =
    Fallback.modulo_schedule_or_fallback ~budget_ratio:0.1 ~max_delta_ii:0 ddg
  in
  (match h.Fallback.degraded with
  | Some (Fallback.Budget_exhausted _) -> ()
  | Some r -> Alcotest.failf "wrong reason: %s" (Fallback.describe r)
  | None -> Alcotest.fail "expected degradation");
  Alcotest.(check bool) "fallback schedule passes the whole stack" true
    (Check.passed h.Fallback.verdict);
  Alcotest.(check bool) "scheduler statistics preserved" true
    (h.Fallback.ims <> None)

let test_fallback_on_checker_failure () =
  let ddg = Lfk.build machine "lfk05" in
  let out = Ims.modulo_schedule ddg in
  let s =
    match out.Ims.schedule with
    | Some s -> s
    | None -> Alcotest.fail "scheduling failed"
  in
  let entries = Array.copy s.Schedule.entries in
  entries.(1) <- { (entries.(1)) with Schedule.time = Schedule.time s 1 + 991 };
  let broken = Schedule.with_entries s entries in
  let h = Fallback.harden ddg { out with Ims.schedule = Some broken } in
  (match h.Fallback.degraded with
  | Some (Fallback.Checker_failed v) ->
      Alcotest.(check bool) "verify among the objectors" true
        (List.mem Check.Verify (Check.killed_by v))
  | Some r -> Alcotest.failf "wrong reason: %s" (Fallback.describe r)
  | None -> Alcotest.fail "expected degradation");
  Alcotest.(check bool) "fallback schedule passes the whole stack" true
    (Check.passed h.Fallback.verdict)

let tests =
  ( "check",
    [
      Alcotest.test_case "lint: clean artifacts" `Quick test_lint_clean;
      Alcotest.test_case "lint: negative time" `Quick test_lint_negative_time;
      Alcotest.test_case "lint: alternative out of range" `Quick
        test_lint_alt_out_of_range;
      Alcotest.test_case "all: every LFK schedule passes" `Quick
        test_check_all_passes_lfk;
      Alcotest.test_case "all: pass summary wording" `Quick
        test_check_pass_summary;
      Alcotest.test_case "all: violation attributed to verify" `Quick
        test_check_attributes_violation_to_verify;
      Alcotest.test_case "mutate: must-kill classes killed" `Quick
        test_mutants_must_kill;
      Alcotest.test_case "mutate: kill-rate floors" `Quick
        test_mutant_kill_floors;
      Alcotest.test_case "mutate: deterministic under a seed" `Quick
        test_mutants_deterministic;
      Alcotest.test_case "fallback: clean outcome untouched" `Quick
        test_harden_clean_pass;
      Alcotest.test_case "fallback: budget exhaustion degrades" `Quick
        test_fallback_on_budget_exhaustion;
      Alcotest.test_case "fallback: checker failure degrades" `Quick
        test_fallback_on_checker_failure;
    ] )
