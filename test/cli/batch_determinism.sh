#!/bin/sh
# Parallel batch determinism at corpus scale: the full Livermore suite
# plus 100 synthetic loops, scheduled at --jobs 1 and --jobs 4, must
# produce byte-identical reports AND byte-identical merged counter
# summaries on stderr.  This is the determinism contract the hot-path
# rewrite must not disturb: per-loop counters are sharded per worker and
# merged in input order, so any scheduling or accounting divergence
# between worker counts shows up here.
set -eu

IMSC="$1"

mkdir -p corpus
for loop in lfk01 lfk02 lfk03 lfk04 lfk05 lfk06 lfk07 lfk08 lfk09 lfk10 \
            lfk11 lfk12 lfk13 lfk14a lfk14b lfk15 lfk17 lfk18a lfk18b \
            lfk18c lfk19a lfk19b lfk20 lfk21 lfk22 lfk23 lfk24; do
  "$IMSC" export "$loop" > "corpus/$loop.loop"
done
i=0
while [ $i -lt 100 ]; do
  "$IMSC" export "syn:$i" > "corpus/syn-$(printf %03d $i).loop"
  i=$((i + 1))
done

"$IMSC" batch corpus --jobs 1 --report det-j1.jsonl 2> det-j1.stderr
"$IMSC" batch corpus --jobs 4 --report det-j4.jsonl 2> det-j4.stderr

cmp det-j1.jsonl det-j4.jsonl

# The summary line names the worker and chunk counts, which legitimately
# differ; the merged counter totals may not.
grep '^merged counters' det-j1.stderr > det-j1.counters
grep '^merged counters' det-j4.stderr > det-j4.counters
cmp det-j1.counters det-j4.counters
