#!/bin/sh
# The scheduling daemon end to end:
#   1. a cold served corpus is byte-identical to an `imsc batch` run;
#   2. a repeat request is served entirely from cache, byte-identically;
#   3. concurrent clients — cold (racing the same uncached loops) and
#      warm — all receive the batch-identical report;
#   4. kill -9 the daemon, restart it against the same cache file (with
#      a simulated torn append): it starts warm, answers everything
#      from cache byte-identically, reports the hits in --stats, and a
#      graceful shutdown publishes the final metrics and
#      "running":false status and removes the socket;
#   5. a flooded 1-deep queue answers with structured overloaded
#      responses (backpressure), and a per-request deadline preempts a
#      hung request mid-spin.
set -eu

IMSC="$1"

# Unix-domain socket paths are limited to ~100 bytes and the dune
# sandbox cwd can exceed that, so the socket (and only the socket)
# lives in a short mktemp dir; all artifacts stay in the sandbox cwd.
SOCKDIR=$(mktemp -d /tmp/imsc-serve.XXXXXX)
SOCK="$SOCKDIR/imsc.sock"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ]; then kill -9 "$DAEMON_PID" 2>/dev/null || true; fi
  rm -rf "$SOCKDIR"
}
trap cleanup EXIT INT TERM

mkdir -p scorpus scorpus2
for loop in lfk01 lfk03 lfk05 lfk07 lfk09 lfk12; do
  "$IMSC" export "$loop" > "scorpus/$loop.loop"
done
for loop in lfk02 lfk15 lfk20 lfk22; do
  "$IMSC" export "$loop" > "scorpus2/$loop.loop"
done

# --- 1. cold serve = batch, byte for byte -----------------------------------

"$IMSC" batch scorpus --jobs 2 --report batch.jsonl 2> /dev/null
"$IMSC" batch scorpus2 --jobs 2 --report batch2.jsonl 2> /dev/null

"$IMSC" serve --socket "$SOCK" --jobs 2 --cache sched.cache \
  2> serve1.stderr &
DAEMON_PID=$!

"$IMSC" request scorpus --socket "$SOCK" --report served1.jsonl 2> req1.stderr
cmp batch.jsonl served1.jsonl
grep -q "0 of 6 loop(s) served from cache" req1.stderr

# --- 2. repeat request: all cache hits, byte-identical ----------------------

"$IMSC" request scorpus --socket "$SOCK" --report served2.jsonl 2> req2.stderr
cmp batch.jsonl served2.jsonl
grep -q "6 of 6 loop(s) served from cache" req2.stderr

# --- 3. concurrent clients ---------------------------------------------------

# Cold: two clients race the same uncached loops (first writer wins the
# cache; both must still see batch-identical bytes).
"$IMSC" request scorpus2 --socket "$SOCK" --report cold1.jsonl 2> /dev/null &
C1=$!
"$IMSC" request scorpus2 --socket "$SOCK" --report cold2.jsonl 2> /dev/null &
C2=$!
wait $C1
wait $C2
cmp batch2.jsonl cold1.jsonl
cmp batch2.jsonl cold2.jsonl

# Warm: same race, everything cached.
"$IMSC" request scorpus --socket "$SOCK" --report warm1.jsonl 2> /dev/null &
C1=$!
"$IMSC" request scorpus --socket "$SOCK" --report warm2.jsonl 2> /dev/null &
C2=$!
wait $C1
wait $C2
cmp batch.jsonl warm1.jsonl
cmp batch.jsonl warm2.jsonl

# --- 4. kill -9, warm restart, graceful shutdown ----------------------------

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
# What a SIGKILL mid-append leaves behind: a final line with no newline.
printf '{"key":"torn","record":"{}' >> sched.cache

"$IMSC" serve --socket "$SOCK" --jobs 2 --cache sched.cache \
  --status-file serve-status.json --metrics serve-metrics.json \
  2> serve2.stderr &
DAEMON_PID=$!

"$IMSC" request scorpus --socket "$SOCK" --report served3.jsonl 2> req3.stderr
cmp batch.jsonl served3.jsonl
grep -q "6 of 6 loop(s) served from cache" req3.stderr
grep -q "torn tail truncated" serve2.stderr

"$IMSC" request --socket "$SOCK" --stats > stats.json 2> /dev/null
grep -q '"serve.cache_hits":6' stats.json

"$IMSC" request --socket "$SOCK" --shutdown 2> shutdown.stderr
i=0
while [ -S "$SOCK" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""
test ! -e "$SOCK"
grep -q '"running":false' serve-status.json
grep -q '"serve.cache_hits":6' serve-metrics.json

# --- 5. backpressure and per-request deadlines ------------------------------

"$IMSC" serve --socket "$SOCK" --jobs 1 --queue 1 \
  --inject-spin "lfk09.loop:20" 2> serve3.stderr &
DAEMON_PID=$!

# The spinning request occupies the only worker until its deadline...
"$IMSC" request scorpus/lfk09.loop --socket "$SOCK" --deadline 1.5 \
  > spin.jsonl 2> spin.stderr &
SPIN=$!
sleep 0.7
# ...so of three fresh requests, at most one queues and the rest are
# answered overloaded immediately.
if "$IMSC" request scorpus/lfk01.loop scorpus/lfk03.loop scorpus/lfk05.loop \
  --socket "$SOCK" > flood.jsonl 2> flood.stderr; then
  echo "a flooded queue must report casualties" >&2
  exit 1
fi
test "$(grep -c '"status":"overloaded"' flood.jsonl)" -ge 1
wait $SPIN || true
grep -q '"status":"cancelled"' spin.jsonl
grep -q '"quarantined":true' spin.jsonl

"$IMSC" request --socket "$SOCK" --shutdown 2> /dev/null
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""

echo "serve.sh: all checks passed"
