#!/bin/sh
# The self-healing service under fire (the chaos gate):
#   1. a supervised daemon injecting seeded socket-level faults (torn
#      frames, corrupted frame guards, severed connections) still
#      serves output byte-identical to a cold `imsc batch` run — the
#      retrying client absorbs every fault by reconnecting and
#      replaying exactly the unanswered (idempotent) requests;
#   2. kill -9 of the daemon generation mid-request: the supervisor
#      restarts it with backoff, the client replays onto the new
#      generation, output stays byte-identical, and the restart shows
#      up in the serve.restarts gauge;
#   3. a slow-loris connection (one byte at a time, frame never
#      completed) is severed by the per-connection read deadline while
#      real clients keep being served;
#   4. SIGTERM to the supervisor is a graceful stop: forwarded to the
#      daemon, exit 0, socket removed;
#   5. a --cache-max-bytes-bounded daemon keeps the cache file under
#      the cap on disk across compaction, survives a corrupt log tail,
#      and restarts warm with its resident subset still hitting;
#      `imsc cache stats|compact` work offline on the same file;
#   6. a crash-looping daemon (unreadable cache) opens the supervisor's
#      circuit breaker instead of restarting forever.
set -eu

IMSC="$1"

# Unix-domain socket paths are limited to ~100 bytes and the dune
# sandbox cwd can exceed that, so the socket (and only the socket)
# lives in a short mktemp dir; all artifacts stay in the sandbox cwd.
SOCKDIR=$(mktemp -d /tmp/imsc-chaos.XXXXXX)
SOCK="$SOCKDIR/imsc.sock"
SUP_PID=""
DAEMON_PID=""
cleanup() {
  if [ -n "$SUP_PID" ]; then kill -9 "$SUP_PID" 2>/dev/null || true; fi
  if [ -f pidfile ]; then kill -9 "$(cat pidfile)" 2>/dev/null || true; fi
  if [ -n "$DAEMON_PID" ]; then kill -9 "$DAEMON_PID" 2>/dev/null || true; fi
  rm -rf "$SOCKDIR"
}
trap cleanup EXIT INT TERM

mkdir -p ccorpus
for loop in lfk01 lfk03 lfk05 lfk07; do
  "$IMSC" export "$loop" > "ccorpus/$loop.loop"
done
"$IMSC" export lfk09 > lfk09.loop

# References: what a cold, daemonless run emits.
"$IMSC" batch ccorpus --jobs 2 --report batch.jsonl 2> /dev/null
"$IMSC" batch lfk09.loop --jobs 1 --report batch9.jsonl 2> /dev/null
"$IMSC" batch ccorpus/lfk07.loop --jobs 1 --report batch7.jsonl 2> /dev/null

# --- 1. byte-identity under seeded fault injection ---------------------------

"$IMSC" serve --socket "$SOCK" --jobs 2 --cache chaos.cache \
  --supervise --pidfile pidfile --backoff 0.05 --backoff-cap 0.5 \
  --conn-timeout 1 --inject-spin "lfk09.loop:2" \
  --chaos 'seed=42,torn=0.15,garbage=0.1,sever=0.05' \
  2> serve-chaos.stderr &
SUP_PID=$!

"$IMSC" request ccorpus --socket "$SOCK" --retries 25 \
  --report out-cold.jsonl 2> /dev/null
cmp batch.jsonl out-cold.jsonl

"$IMSC" request ccorpus --socket "$SOCK" --retries 25 \
  --report out-warm.jsonl 2> req-warm.stderr
cmp batch.jsonl out-warm.jsonl
grep -q "4 of 4 loop(s) served from cache" req-warm.stderr
grep -q "CHAOS INJECTION ON" serve-chaos.stderr

# --- 2. kill -9 mid-request: supervised restart, replay converges ------------

# The spin hook pins lfk09 open so the SIGKILL reliably lands with the
# request in flight; the client then replays it onto the restarted
# generation (which spins again, schedules, and answers).
"$IMSC" request lfk09.loop --socket "$SOCK" --retries 25 \
  --report out9.jsonl 2> /dev/null &
CLIENT=$!
sleep 0.7
kill -9 "$(cat pidfile)"
wait $CLIENT
cmp batch9.jsonl out9.jsonl
grep -q "restarted by the supervisor" serve-chaos.stderr

"$IMSC" request --socket "$SOCK" --retries 25 --stats > stats.json 2> /dev/null
grep -q '"serve.restarts":1' stats.json

# --- 3. slow-loris severed while real clients are served ---------------------

"$IMSC" request --socket "$SOCK" --inject-dribble 0.2 --timeout 10 \
  2> dribble.stderr
grep -q "severed" dribble.stderr
# The daemon is still healthy afterwards.
"$IMSC" request ccorpus --socket "$SOCK" --retries 25 \
  --report out-after.jsonl 2> /dev/null
cmp batch.jsonl out-after.jsonl

# --- 4. SIGTERM to the supervisor is a graceful stop -------------------------

kill -TERM "$SUP_PID"
wait "$SUP_PID"
SUP_PID=""
test ! -e "$SOCK"
test ! -f pidfile

# --- 5. bounded cache: under the cap on disk, warm across restarts -----------

# A cap around 60% of the corpus's report bytes forces eviction and
# log compaction without ever refusing a single entry.  One scheduling
# worker makes the insertion order (and so the surviving resident —
# the last-completed loop, lfk07) deterministic.
CAP=$(( $(wc -c < batch.jsonl) * 3 / 5 + 64 ))

"$IMSC" serve --socket "$SOCK" --jobs 1 --cache bounded.cache \
  --cache-max-bytes "$CAP" --cache-policy lru 2> serve-bounded.stderr &
DAEMON_PID=$!

"$IMSC" request ccorpus --socket "$SOCK" --report bout1.jsonl 2> /dev/null
cmp batch.jsonl bout1.jsonl
"$IMSC" request --socket "$SOCK" --shutdown 2> /dev/null
wait "$DAEMON_PID" || true
DAEMON_PID=""
test "$(wc -c < bounded.cache)" -le "$CAP"

# What a SIGKILL mid-append leaves behind: a final line with no newline.
printf '{"key":"torn","record":"{}' >> bounded.cache

"$IMSC" serve --socket "$SOCK" --jobs 1 --cache bounded.cache \
  --cache-max-bytes "$CAP" --cache-policy lru 2> serve-bounded2.stderr &
DAEMON_PID=$!

# Identical hit behaviour across the compacted-log restart: the
# resident entry (the cold run's last insert) hits warm, byte-for-byte.
# It is probed alone, before anything recomputes — a full-corpus
# request could legitimately evict the lone resident (the cap holds
# little more than one record) before its own probe reaches it.
"$IMSC" request ccorpus/lfk07.loop --socket "$SOCK" --report bout7.jsonl \
  2> breq7.stderr
cmp batch7.jsonl bout7.jsonl
grep -q "1 of 1 loop(s) served from cache" breq7.stderr
grep -q "torn tail truncated" serve-bounded2.stderr

"$IMSC" request ccorpus --socket "$SOCK" --report bout2.jsonl 2> /dev/null
cmp batch.jsonl bout2.jsonl

"$IMSC" request --socket "$SOCK" --shutdown 2> /dev/null
wait "$DAEMON_PID" || true
DAEMON_PID=""
test "$(wc -c < bounded.cache)" -le "$CAP"

# Offline tooling on the same file.
"$IMSC" cache stats bounded.cache > cache-stats.json
grep -q '"entries":' cache-stats.json
grep -q '"torn_tail_truncated":false' cache-stats.json
"$IMSC" cache compact bounded.cache 2> compact.stderr
test "$(wc -c < bounded.cache)" -le "$CAP"

# --- 6. crash loop opens the circuit breaker ---------------------------------

printf '{"kind":"imsc-batch-journal","version":1}\n' > foreign.cache
if "$IMSC" serve --socket "$SOCK" --cache foreign.cache \
  --supervise --max-restarts 2 --backoff 0.01 --backoff-cap 0.02 \
  2> breaker.stderr; then
  echo "a crash-looping daemon must open the circuit breaker" >&2
  exit 1
fi
grep -qi "circuit breaker" breaker.stderr

echo "chaos.sh: all checks passed"
