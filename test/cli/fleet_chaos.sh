#!/bin/sh
# The fleet-scale batch gate:
#   1. a seeded binary corpus generates, validates (header, framing,
#      per-record CRC), and batch-schedules single-process;
#   2. clean fleet runs at two different shard counts produce merged
#      reports byte-identical to the single-process run — the
#      round-robin merge is shard-count-invariant;
#   3. kill -9 of a worker process mid-run: the fleet supervisor
#      restarts it with --resume from its fsync'd journal, and the
#      merged report is STILL byte-identical to the clean run;
#   4. the merged status file ends with "running":false and the
#      restart is visible in the fleet diagnostics.
set -eu

IMSC="$1"

FLEET_PID=""
cleanup() {
  if [ -n "$FLEET_PID" ]; then kill -9 "$FLEET_PID" 2>/dev/null || true; fi
}
trap cleanup EXIT INT TERM

# --- 1. corpus generation + integrity + single-process reference -------------

"$IMSC" corpus gen --out corpus.ilb --count 600 --seed 1994 2> /dev/null
"$IMSC" corpus info corpus.ilb > corpus-info.out
grep -q "600 record(s)" corpus-info.out

"$IMSC" batch --corpus corpus.ilb --jobs 1 --report single.jsonl 2> /dev/null
test "$(wc -l < single.jsonl)" -eq 600

# --- 2. clean fleets at two shard counts -------------------------------------

for W in 2 5; do
  rm -rf "run$W"
  mkdir "run$W"
  "$IMSC" fleet --corpus corpus.ilb --workers "$W" --dir "run$W" \
    --report "fleet$W.jsonl" 2> "fleet$W.stderr"
  cmp single.jsonl "fleet$W.jsonl"
done

# --- 3. kill -9 a worker mid-run; the merge must not notice ------------------

rm -rf runchaos
mkdir runchaos
"$IMSC" fleet --corpus corpus.ilb --workers 3 --dir runchaos \
  --report fleet-chaos.jsonl --status-file fleet-status.json \
  --status-interval 0.1 2> fleet-chaos.stderr &
FLEET_PID=$!

# The status file carries every worker's pid; kill the first live one
# as soon as the first heartbeat lands (early in the run, so the shard
# has real work left to resume).
KILLED=0
i=0
while [ "$i" -lt 100 ]; do
  if [ -f fleet-status.json ]; then
    PID=$(grep -o '"pid":[1-9][0-9]*' fleet-status.json | head -1 | cut -d: -f2 || true)
    if [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null; then
      KILLED=1
      break
    fi
  fi
  sleep 0.1
  i=$((i + 1))
done
test "$KILLED" -eq 1

wait "$FLEET_PID"
FLEET_PID=""

cmp single.jsonl fleet-chaos.jsonl

# --- 4. observability: final snapshot settled, restart recorded --------------

grep -q '"running":false' fleet-status.json
grep -q "restart" fleet-chaos.stderr

echo "fleet chaos gate: OK"
