#!/bin/sh
# Run-level observability end to end: --profile dumps parse and render,
# their deterministic parts (counter totals/maxima, II series) are
# byte-identical across worker counts, --status-file leaves a complete
# final snapshot, and `perf report` tabulates the BENCH trajectory.
set -eu

IMSC="$1"
BENCH_SNAPSHOT="$2"

# A single schedule run profiles itself and `perf show` renders it.
"$IMSC" schedule lfk07 --profile prof-sched.json > /dev/null
grep -q '"jobs":1' prof-sched.json
"$IMSC" perf show prof-sched.json > show-sched.txt
grep -q 'mindist' show-sched.txt
grep -q 'job.seconds' show-sched.txt

mkdir -p obs-corpus
for loop in lfk01 lfk07 lfk14a lfk21; do
  "$IMSC" export "$loop" > "obs-corpus/$loop.loop"
done

"$IMSC" batch obs-corpus --jobs 1 --report obs-j1.jsonl \
  --profile obs-prof-j1.json --status-file obs-status.json 2> /dev/null
"$IMSC" batch obs-corpus --jobs 4 --report obs-j4.jsonl \
  --profile obs-prof-j4.json 2> /dev/null
cmp obs-j1.jsonl obs-j4.jsonl

# The wall-clock fields legitimately differ between worker counts; the
# counter totals/ceilings and the achieved-II series may not.
"$IMSC" perf show obs-prof-j1.json > show-j1.txt
"$IMSC" perf show obs-prof-j4.json > show-j4.txt
sed -n '/^counters /,/^$/p' show-j1.txt > counters-j1.txt
sed -n '/^counters /,/^$/p' show-j4.txt > counters-j4.txt
cmp counters-j1.txt counters-j4.txt
sed -n 's/.*\({"name":"ii","count":[^}]*}\).*/\1/p' obs-prof-j1.json > ii-j1.txt
sed -n 's/.*\({"name":"ii","count":[^}]*}\).*/\1/p' obs-prof-j4.json > ii-j4.txt
test -s ii-j1.txt
cmp ii-j1.txt ii-j4.txt

# The final status snapshot is complete: every job accounted for and
# the run marked finished.
grep -q '"running":false' obs-status.json
grep -q '"total":4' obs-status.json
grep -q '"done":4' obs-status.json

# The trajectory table names each snapshot it was given.
"$IMSC" perf report "$BENCH_SNAPSHOT" > report.txt
grep -q 'BENCH_4.json' report.txt
grep -q 'mean II' report.txt

# Unreadable input is a clean failure, not a traceback.
if "$IMSC" perf show missing-profile.json > /dev/null 2>&1; then
  echo "perf show must fail on a missing file" >&2
  exit 1
fi
