#!/bin/sh
# Resilient batch runs, end to end:
#   1. a journaled clean run;
#   2. resume from a torn journal (simulated SIGKILL mid-append) must
#      re-run only the missing loops and produce a byte-identical
#      report;
#   3. resume when everything is already journaled must replay without
#      scheduling anything — still byte-identical;
#   4. a journal written under different flags must be refused;
#   5. a hung loop (injected spin) must be preempted by the deadline,
#      retried with escalation, quarantined, and must not block the
#      other loops or the wall clock;
#   6. a flaky loop (injected transient fault) must be retried to
#      success and leave the report identical to the clean run;
#   7. --max-failures must cancel the outstanding loops through the
#      run-level token.
set -eu

IMSC="$1"

mkdir -p rcorpus
for loop in lfk01 lfk02 lfk03 lfk05 lfk07 lfk09 lfk12 lfk20; do
  "$IMSC" export "$loop" > "rcorpus/$loop.loop"
done

# --- 1. clean journaled run ------------------------------------------------

"$IMSC" batch rcorpus --jobs 1 --journal clean.journal \
  --report clean.jsonl 2> clean.stderr
test "$(wc -l < clean.jsonl)" -eq 8

# --- 2. torn-journal resume ------------------------------------------------

# Keep the manifest plus four complete records, then append the first
# 25 bytes of the fifth record with no newline — exactly what a SIGKILL
# during the fsync'd append leaves behind.
head -n 5 clean.journal > torn.journal
sed -n '6p' clean.journal | cut -c1-25 | tr -d '\n' >> torn.journal

"$IMSC" batch rcorpus --jobs 2 --resume torn.journal \
  --report resumed.jsonl 2> resumed.stderr
cmp clean.jsonl resumed.jsonl
grep -q "torn" resumed.stderr
grep -q "resuming — 4 of 8" resumed.stderr

# --- 3. resume with nothing left to do -------------------------------------

"$IMSC" batch rcorpus --jobs 4 --resume torn.journal \
  --report resumed2.jsonl 2> resumed2.stderr
cmp clean.jsonl resumed2.jsonl
grep -q "resuming — 8 of 8" resumed2.stderr

# --- 4. manifest mismatch refused -------------------------------------------

cp clean.journal other-flags.journal
if "$IMSC" batch rcorpus --budget-ratio 3.0 --resume other-flags.journal \
     --report mismatch.jsonl 2> mismatch.stderr; then
  echo "resume under different flags must fail" >&2
  exit 1
fi
grep -qi "mismatch" mismatch.stderr

# --- 5. hung loop: preempted, escalated, quarantined ------------------------

t0=$(date +%s)
if "$IMSC" batch rcorpus --jobs 2 --deadline 0.2 --retries 2 --escalate 2.0 \
     --inject-spin lfk03.loop:30 --quarantine quarantine.txt \
     --status-file spin-status.json --status-interval 0.05 \
     --report spin.jsonl 2> spin.stderr; then
  echo "a quarantined loop must exit 1" >&2
  exit 1
fi
# The casualty exit still publishes a complete final status snapshot.
grep -q '"running":false' spin-status.json
t1=$(date +%s)
# Two attempts at 0.2 s and 0.4 s against a 30 s spin: the deadline,
# not the spin, must bound the wall clock.
test $((t1 - t0)) -lt 20
grep 'lfk03' spin.jsonl | grep -q '"status":"cancelled"'
grep 'lfk03' spin.jsonl | grep -q '"quarantined":true'
# The cancelled loop still ships a checked acyclic fallback schedule.
grep 'lfk03' spin.jsonl | grep -q '"fallback_ii"'
test "$(grep -c '"status":"ok"' spin.jsonl)" -eq 7
grep -q 'lfk03' quarantine.txt
test "$(wc -l < quarantine.txt)" -eq 1

# --- 6. flaky loop: retried to success --------------------------------------

"$IMSC" batch rcorpus --jobs 2 --retries 3 --backoff 0.01 \
  --inject-flaky lfk05.loop:1 --report flaky.jsonl 2> flaky.stderr
grep -q "retried" flaky.stderr
# The retry leaves no trace in the report: identical to the clean run.
cmp clean.jsonl flaky.jsonl

# --- 7. fail-fast via the run-level token -----------------------------------

mkdir -p rcorpus-bad
printf 'x = load a\ny =\n' > rcorpus-bad/aaa-bad.loop
cp rcorpus/*.loop rcorpus-bad/
if "$IMSC" batch rcorpus-bad --jobs 1 --max-failures 0 \
     --status-file failfast-status.json --status-interval 0.05 \
     --report failfast.jsonl 2> failfast.stderr; then
  echo "fail-fast run must exit 1" >&2
  exit 1
fi
grep -q "cancelling outstanding" failfast.stderr
grep -q '"status":"failed"' failfast.jsonl
test "$(grep -c '"status":"cancelled"' failfast.jsonl)" -eq 8
# Fail-fast must not skip the final "running":false heartbeat either.
grep -q '"running":false' failfast-status.json
