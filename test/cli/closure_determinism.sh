#!/bin/sh
# Parallel-closure determinism: the figure-6 sweep (and every other
# deterministic table the bench prints) must be byte-identical between
# --jobs 1 and --jobs 4 with the blocked parallel MinDist closure
# enabled and its threshold forced low enough that every Livermore
# loop takes the tiled path.  The blocked kernel must change wall
# clock only, never a distance, a schedule, or a printed byte.
set -eu

BENCH="$1"

"$BENCH" --quick --jobs 1 --closure-jobs 2 --closure-threshold 8 \
  > closure-j1.out 2> closure-j1.log
"$BENCH" --quick --jobs 4 --closure-jobs 2 --closure-threshold 8 \
  > closure-j4.out 2> closure-j4.log

cmp closure-j1.out closure-j4.out

# And against the serial closure: the parallel path is opt-in and
# value-identical, so turning it off must not move a byte either.
"$BENCH" --quick --jobs 4 > closure-serial.out 2> closure-serial.log
cmp closure-serial.out closure-j4.out
