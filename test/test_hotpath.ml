(* Guards for the hot-path rewrite of the scheduler inner loops.

   Four layers of defence, from micro to macro:

   - a property test driving the count-matrix MRT — through both the
     capless (count walk) and the caps-compiled (bitboard) probe — and
     the original list-and-Hashtbl implementation ({!Mrt_ref}) with the
     same random command sequences, requiring every observable to agree;
   - a [Gc.allocated_bytes] assertion that the compiled admission probe
     [Mrt.fits_c] allocates nothing, on both probe paths;
   - a counter-regression gate pinning the inner-loop work
     (estart / findslot / mindist / mindist_inc / mrt_bitprobe) of every
     Livermore kernel, so an accidental algorithmic regression fails
     [dune runtest] rather than only showing up in the benchmarks;
   - golden decision traces: the exact place / evict / force sequence of
     two Livermore kernels and one forced-placement-heavy synthetic
     loop, byte-for-byte. *)

open Ims_machine
open Ims_core
open Ims_workloads

(* --- MRT oracle --------------------------------------------------------- *)

let random_machine st =
  let nres = 1 + Random.State.int st 3 in
  let b = Machine.builder "oracle" in
  (* Capacity 3 resources force the bitboard compile onto its count-walk
     fallback for low-multiplicity usages (cap - mult >= 2). *)
  for i = 0 to nres - 1 do
    ignore
      (Machine.add_resource b
         (Printf.sprintf "r%d" i)
         ~count:(1 + Random.State.int st 3))
  done;
  (Machine.finish b, nres)

let random_table st nres =
  let k = 1 + Random.State.int st 4 in
  Reservation.make
    (List.init k (fun _ -> (Random.State.int st nres, Random.State.int st 6)))

let show_ops ops = String.concat "," (List.map string_of_int ops)

(* One random session: a machine, a pool of tables compiled once, and a
   command stream of probes, reservations, releases and conflict queries
   applied in lockstep to [Mrt] and [Mrt_ref]. *)
let oracle_session seed =
  let st = Random.State.make [| seed |] in
  let machine, nres = random_machine st in
  let ii = 1 + Random.State.int st 8 in
  let pool =
    Array.init (3 + Random.State.int st 4) (fun _ -> random_table st nres)
  in
  let ctabs = Array.map (Mrt.compile ~ii) pool in
  (* The same tables compiled against the capacity vector: probes go
     through the bitboard planes instead of the count walk. *)
  let caps =
    Array.init nres (fun i ->
        (Machine.resource_by_name machine (Printf.sprintf "r%d" i))
          .Resource.count)
  in
  let ctabs_bb = Array.map (Mrt.compile ~ii ~caps) pool in
  let t = Mrt.create machine ~ii in
  let r = Mrt_ref.create machine ~ii in
  let holdings = ref [] in
  let next_op = ref 0 in
  let fail fmt = Printf.ksprintf failwith fmt in
  let steps = 60 + Random.State.int st 60 in
  for step = 1 to steps do
    match Random.State.int st 6 with
    | 0 | 1 ->
        let k = Random.State.int st (Array.length pool) in
        let time = Random.State.int st 24 in
        let expect = Mrt_ref.fits r pool.(k) ~time in
        if Mrt.fits_c t ctabs.(k) ~time <> expect then
          fail "seed %d step %d: fits_c disagrees (table %d, time %d)" seed
            step k time;
        if Mrt.fits_c t ctabs_bb.(k) ~time <> expect then
          fail "seed %d step %d: bitboard fits_c disagrees (table %d, time %d)"
            seed step k time;
        if Mrt.fits t pool.(k) ~time <> expect then
          fail "seed %d step %d: memoized fits disagrees (table %d, time %d)"
            seed step k time
    | 2 | 3 ->
        let k = Random.State.int st (Array.length pool) in
        let time = Random.State.int st 24 in
        if Mrt_ref.fits r pool.(k) ~time then begin
          let op = !next_op in
          incr next_op;
          Mrt_ref.reserve r ~op pool.(k) ~time;
          (* Either compiled form maintains the same cells and planes. *)
          let c = if Random.State.bool st then ctabs.(k) else ctabs_bb.(k) in
          Mrt.reserve_c t ~op c ~time;
          holdings := (op, k, time) :: !holdings
        end
    | 4 -> (
        match !holdings with
        | [] -> ()
        | hs ->
            let i = Random.State.int st (List.length hs) in
            let ((op, k, time) as h) = List.nth hs i in
            holdings := List.filter (( != ) h) hs;
            Mrt_ref.release r ~op pool.(k) ~time;
            let c = if Random.State.bool st then ctabs.(k) else ctabs_bb.(k) in
            Mrt.release_c t ~op c ~time)
    | _ ->
        let time = Random.State.int st 24 in
        let expect =
          Mrt_ref.conflicting_ops r (Array.to_list pool) ~time
        in
        let got = Mrt.conflicting_ops_c t ctabs ~time in
        if got <> expect then
          fail "seed %d step %d: conflicting_ops disagrees at %d: {%s} vs {%s}"
            seed step time (show_ops got) (show_ops expect);
        if Mrt.conflicting_ops t (Array.to_list pool) ~time <> expect then
          fail "seed %d step %d: memoized conflicting_ops disagrees at %d" seed
            step time
  done;
  for slot = 0 to ii - 1 do
    for resource = 0 to nres - 1 do
      if
        Mrt.occupants t ~slot ~resource <> Mrt_ref.occupants r ~slot ~resource
      then fail "seed %d: occupants disagree at (%d, %d)" seed slot resource
    done
  done;
  let printed = Format.asprintf "%a" Mrt.pp t in
  let expected = Format.asprintf "%a" Mrt_ref.pp r in
  if printed <> expected then
    fail "seed %d: printed grids disagree:\n%s\nvs reference:\n%s" seed printed
      expected;
  true

let prop_mrt_oracle =
  QCheck.Test.make ~count:300 ~name:"mrt: count matrix agrees with reference"
    QCheck.(int_bound 1_000_000)
    oracle_session

(* --- allocation-free admission probe ------------------------------------ *)

(* [Gc.allocated_bytes] itself boxes its float result; measure that
   overhead with an empty bracket and subtract it.  The probe loop runs
   often enough that even a single word per probe would stand out as
   hundreds of kilobytes. *)
let test_fits_c_allocation_free () =
  let b = Machine.builder "alloc" in
  ignore (Machine.add_resource b "bus" ~count:2);
  ignore (Machine.add_resource b "alu" ~count:1);
  let machine = Machine.finish b in
  let ii = 4 in
  let t = Mrt.create machine ~ii in
  let table = Reservation.make [ (0, 0); (1, 2); (0, 3); (1, 5) ] in
  let measure what c =
    Mrt.reserve_c t ~op:0 c ~time:0;
    let probes = 100_000 in
    (* Warm-up, so any lazy one-time allocation is off the books. *)
    for i = 0 to 99 do
      ignore (Sys.opaque_identity (Mrt.fits_c t c ~time:(i land 7)))
    done;
    let overhead =
      let a = Gc.allocated_bytes () in
      let b = Gc.allocated_bytes () in
      b -. a
    in
    let before = Gc.allocated_bytes () in
    for i = 0 to probes - 1 do
      ignore (Sys.opaque_identity (Mrt.fits_c t c ~time:(i land 7)))
    done;
    let after = Gc.allocated_bytes () in
    let per_probe = (after -. before -. overhead) /. float_of_int probes in
    if per_probe > 0.01 then
      Alcotest.failf "Mrt.fits_c (%s) allocates %.3f bytes per probe" what
        per_probe;
    Mrt.release_c t ~op:0 c ~time:0
  in
  measure "count walk" (Mrt.compile ~ii table);
  measure "bitboard" (Mrt.compile ~ii ~caps:[| 2; 1 |] table)

(* --- counter-regression gate -------------------------------------------- *)

(* Inner-loop work of the full IMS run (MII computation included) on
   every Livermore kernel, pinned at the values the rewrite achieves on
   the Cydra 5 model:
   (estart_inner, findslot_inner, mindist_inner, mindist_inc,
    mrt_bitprobe).
   These are exact-determinism ceilings — the scheduler is deterministic,
   so exceeding one means an algorithmic regression, not noise.  The
   mindist ceiling now covers only the one forward closure per solver;
   the per-candidate-II work moved to the much smaller mindist_inc. *)
let lfk_ceilings =
  [
    ("lfk01", (51, 23, 0, 5, 40));
    ("lfk02", (42, 20, 0, 5, 34));
    ("lfk03", (29, 12, 0, 7, 22));
    ("lfk04", (29, 12, 0, 7, 22));
    ("lfk05", (36, 14, 2, 28, 26));
    ("lfk06", (37, 14, 24, 94, 26));
    ("lfk07", (126, 85, 0, 11, 125));
    ("lfk08", (168, 141, 0, 13, 193));
    ("lfk09", (142, 105, 0, 12, 150));
    ("lfk10", (158, 158, 0, 19, 206));
    ("lfk11", (26, 11, 0, 7, 20));
    ("lfk12", (32, 14, 0, 4, 25));
    ("lfk13", (97, 45, 0, 6, 74));
    ("lfk14a", (62, 25, 0, 5, 44));
    ("lfk14b", (64, 34, 0, 4, 54));
    ("lfk15", (79, 35, 0, 4, 61));
    ("lfk17", (54, 19, 66, 134, 36));
    ("lfk18a", (86, 50, 0, 9, 77));
    ("lfk18b", (103, 67, 0, 11, 99));
    ("lfk18c", (61, 32, 0, 7, 52));
    ("lfk19a", (36, 14, 2, 28, 26));
    ("lfk19b", (36, 14, 2, 28, 26));
    ("lfk20", (60, 29, 24, 65, 49));
    ("lfk21", (36, 15, 0, 8, 27));
    ("lfk22", (60, 34, 0, 6, 53));
    ("lfk23", (110, 54, 224, 117, 89));
    ("lfk24", (44, 15, 30, 90, 29));
  ]

let test_counter_ceilings () =
  let machine = Machine.cydra5 () in
  List.iter
    (fun (name, (estart, findslot, mindist, mindist_inc, bitprobe)) ->
      let ddg = Lfk.build machine name in
      let counters = Ims_mii.Counters.create () in
      let out = Ims.modulo_schedule ~counters ddg in
      Alcotest.(check bool) (name ^ " schedules") true (out.Ims.schedule <> None);
      let gate what ceiling actual =
        if actual > ceiling then
          Alcotest.failf "%s: %s regressed: %d > ceiling %d" name what
            actual ceiling
      in
      gate "estart" estart counters.Ims_mii.Counters.estart_inner;
      gate "findslot" findslot counters.Ims_mii.Counters.findslot_inner;
      gate "mindist" mindist counters.Ims_mii.Counters.mindist_inner;
      gate "mindist_inc" mindist_inc counters.Ims_mii.Counters.mindist_inc;
      gate "mrt_bitprobe" bitprobe counters.Ims_mii.Counters.mrt_bitprobe)
    lfk_ceilings

(* --- golden decision traces --------------------------------------------- *)

let decision_string (e : Ims_obs.Event.t) =
  match e.payload with
  | Place { op; time; alt; estart; forced } ->
      Some
        (Printf.sprintf "%s op=%d t=%d alt=%d e=%d"
           (if forced then "force" else "place")
           op time alt estart)
  | Evict { op; by; time; reason } ->
      Some
        (Printf.sprintf "evict op=%d by=%d t=%d %s" op by time
           (match reason with
           | Ims_obs.Event.Dependence -> "dependence"
           | Ims_obs.Event.Resource -> "resource"))
  | _ -> None

let check_decisions name ddg expected =
  let trace = Ims_obs.Trace.create () in
  let out = Ims.modulo_schedule ~trace ddg in
  Alcotest.(check bool) (name ^ " schedules") true (out.Ims.schedule <> None);
  let got = List.filter_map decision_string (Ims_obs.Trace.events trace) in
  Alcotest.(check (list string)) (name ^ " decision sequence") expected got

(* lfk20 (first-order recurrence through a divide): the long-latency
   chain drags a cascade of dependence evictions behind it. *)
let test_golden_trace_lfk20 () =
  check_decisions "lfk20"
    (Lfk.build (Machine.cydra5 ()) "lfk20")
    [
      "place op=1 t=0 alt=0 e=0"; "place op=5 t=3 alt=0 e=3";
      "place op=2 t=0 alt=0 e=0"; "place op=3 t=1 alt=0 e=0";
      "place op=6 t=3 alt=0 e=3"; "place op=7 t=4 alt=0 e=4";
      "place op=8 t=0 alt=0 e=0"; "place op=9 t=23 alt=0 e=23";
      "place op=10 t=27 alt=0 e=27"; "place op=11 t=24 alt=0 e=24";
      "place op=12 t=37 alt=0 e=32"; "evict op=8 by=12 t=0 dependence";
      "place op=8 t=23 alt=0 e=23"; "evict op=9 by=8 t=23 dependence";
      "place op=9 t=28 alt=0 e=28"; "evict op=10 by=9 t=27 dependence";
      "place op=10 t=32 alt=0 e=32"; "place op=14 t=1 alt=0 e=0";
      "place op=15 t=4 alt=0 e=4"; "place op=16 t=8 alt=0 e=8";
      "place op=4 t=2 alt=0 e=0"; "place op=13 t=59 alt=0 e=59";
      "place op=17 t=60 alt=0 e=60";
    ]

(* lfk23 (2-D implicit hydrodynamics, recurrence through memory). *)
let test_golden_trace_lfk23 () =
  check_decisions "lfk23"
    (Lfk.build (Machine.cydra5 ()) "lfk23")
    [
      "place op=1 t=0 alt=0 e=0"; "place op=3 t=0 alt=0 e=0";
      "place op=5 t=1 alt=0 e=0"; "place op=7 t=1 alt=0 e=0";
      "place op=2 t=3 alt=0 e=3"; "place op=4 t=3 alt=0 e=3";
      "place op=6 t=4 alt=0 e=4"; "place op=8 t=4 alt=0 e=4";
      "place op=9 t=2 alt=0 e=0"; "place op=11 t=2 alt=0 e=0";
      "place op=10 t=5 alt=0 e=5"; "place op=12 t=5 alt=0 e=5";
      "place op=13 t=3 alt=0 e=0"; "place op=14 t=6 alt=0 e=6";
      "place op=15 t=23 alt=0 e=23"; "place op=16 t=24 alt=0 e=24";
      "place op=17 t=29 alt=0 e=29"; "place op=18 t=25 alt=0 e=25";
      "place op=25 t=3 alt=0 e=0"; "place op=19 t=33 alt=0 e=33";
      "place op=26 t=6 alt=0 e=6"; "place op=20 t=37 alt=0 e=37";
      "place op=27 t=10 alt=0 e=10"; "place op=21 t=41 alt=0 e=41";
      "place op=22 t=46 alt=0 e=46"; "place op=23 t=4 alt=0 e=0";
      "place op=24 t=53 alt=0 e=50"; "evict op=6 by=24 t=4 dependence";
      "place op=6 t=7 alt=0 e=7"; "evict op=16 by=6 t=24 dependence";
      "place op=16 t=27 alt=0 e=27"; "evict op=17 by=16 t=29 dependence";
      "place op=17 t=32 alt=0 e=32"; "evict op=19 by=17 t=33 dependence";
      "place op=19 t=36 alt=0 e=36"; "evict op=20 by=19 t=37 dependence";
      "place op=20 t=40 alt=0 e=40"; "evict op=21 by=20 t=41 dependence";
      "place op=21 t=44 alt=0 e=44"; "evict op=22 by=21 t=46 dependence";
      "place op=22 t=49 alt=0 e=49"; "place op=28 t=54 alt=0 e=54";
    ]

(* A synthetic loop whose resource pressure exercises forced placement:
   both force events and resource-reason evictions appear. *)
let test_golden_trace_forced () =
  check_decisions "syn:22"
    (Synthetic.generate (Machine.cydra5 ()) (Random.State.make [| 22 |]))
    [
      "place op=1 t=0 alt=0 e=0"; "place op=2 t=3 alt=0 e=3";
      "place op=7 t=0 alt=0 e=0"; "place op=8 t=3 alt=0 e=3";
      "place op=9 t=7 alt=0 e=7"; "place op=3 t=0 alt=1 e=0";
      "evict op=8 by=4 t=3 resource"; "force op=4 t=23 alt=0 e=23";
      "evict op=3 by=8 t=0 resource"; "force op=8 t=4 alt=0 e=3";
      "evict op=9 by=8 t=7 dependence"; "place op=9 t=8 alt=0 e=8";
      "place op=3 t=1 alt=0 e=0"; "place op=5 t=1 alt=0 e=0";
      "place op=6 t=4 alt=0 e=4"; "place op=10 t=27 alt=0 e=27";
    ]

(* The same three golden sequences with the blocked parallel closure
   forced on (threshold far below these loops' node counts): the tiled
   Floyd-Warshall may only change wall clock, never a distance, so the
   decision traces must not move by a byte. *)
let test_golden_traces_parallel_closure () =
  Ims_mii.Mindist.set_parallel ~jobs:2 ~threshold:4;
  Fun.protect
    ~finally:(fun () -> Ims_mii.Mindist.set_parallel ~jobs:1 ~threshold:64)
    (fun () ->
      test_golden_trace_lfk20 ();
      test_golden_trace_lfk23 ();
      test_golden_trace_forced ())

(* --- indexed ready set --------------------------------------------------- *)

(* The tournament tree against the obvious list implementation: after any
   add/remove sequence the reported minimum present rank, cardinality and
   membership agree. *)
let prop_ready_tree =
  QCheck.Test.make ~count:300 ~name:"ready: tournament tree agrees with list"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 1 + Random.State.int st 40 in
      let t = Ready.create n in
      let present = Array.make n false in
      let steps = 20 + Random.State.int st 80 in
      for _ = 1 to steps do
        let r = Random.State.int st n in
        if Random.State.bool st then begin
          Ready.add t r;
          present.(r) <- true
        end
        else begin
          Ready.remove t r;
          present.(r) <- false
        end;
        let naive_min = ref (-1) in
        for i = n - 1 downto 0 do
          if present.(i) then naive_min := i
        done;
        let naive_card =
          Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 present
        in
        if Ready.min_rank t <> !naive_min then
          failwith
            (Printf.sprintf "seed %d: min_rank %d <> %d" seed (Ready.min_rank t)
               !naive_min);
        if Ready.cardinal t <> naive_card then
          failwith (Printf.sprintf "seed %d: cardinal disagrees" seed);
        if Ready.mem t r <> present.(r) then
          failwith (Printf.sprintf "seed %d: mem disagrees" seed)
      done;
      true)

let tests =
  ( "hotpath",
    [
      QCheck_alcotest.to_alcotest prop_mrt_oracle;
      Alcotest.test_case "fits_c is allocation-free" `Quick
        test_fits_c_allocation_free;
      Alcotest.test_case "lfk inner-loop counter ceilings" `Slow
        test_counter_ceilings;
      Alcotest.test_case "golden trace: lfk20" `Quick test_golden_trace_lfk20;
      Alcotest.test_case "golden trace: lfk23" `Quick test_golden_trace_lfk23;
      Alcotest.test_case "golden trace: forced placement (syn:22)" `Quick
        test_golden_trace_forced;
      Alcotest.test_case "golden traces under parallel closure" `Quick
        test_golden_traces_parallel_closure;
      QCheck_alcotest.to_alcotest prop_ready_tree;
    ] )
