(* The evaluation harness: regenerates every table and figure of
   Rau, "Iterative Modulo Scheduling" (MICRO-27, 1994).

     Figure 1  reservation tables for the pipelined add and multiply
     Table 1   delay formulae per dependence kind
     Table 2   the Cydra 5 machine model
     Table 3   distribution statistics over the 1327-loop suite
     (4.3)     headline quality claims (DeltaII histogram, inefficiency)
     Figure 6  execution-time dilation / scheduling inefficiency vs
               BudgetRatio
     Table 4   worst-case vs empirical computational complexity (LMS fits)
     Ablations priority functions, RecMII methods, delay models, EVR,
               code schemas
     Bechamel  wall-clock micro-benchmarks, one per table/figure

   Run with: dune exec bench/main.exe            (full 1327-loop suite)
             dune exec bench/main.exe -- --quick (300 loops, no bechamel)
             ... --jobs N   (fan the per-loop work out over N domains;
                             stdout is byte-identical for every N)

   Absolute numbers differ from the paper (its loops came from the Cydra 5
   Fortran compiler; ours are the LFK translations plus a calibrated
   generator) — the comparison targets are the distribution shapes and
   the optimality/efficiency claims, printed side by side. *)

open Ims_machine
open Ims_ir
open Ims_mii
open Ims_core
open Ims_stats
open Ims_workloads

(* --metrics FILE dumps one JSON line per loop (name, bounds, achieved
   II, steps, table 4 counters) so suite-wide regressions in IIs /
   budget / time become diffable artifacts.  Unknown flags and flags
   missing their value are hard errors — a silently ignored
   "--metrics" as the last argument cost real debugging time once. *)
type opts = {
  quick : bool;
  jobs : int;
  closure_jobs : int;
  closure_threshold : int;
  metrics_file : string option;
  bench_json : string option;
  journal : string option;
  resume : string option;
  profile_file : string option;
  baseline : string option;
  tolerance : float option;  (* fractional: 0.1 = 10% *)
  time_tolerance : float option;
  status_file : string option;
  status_interval : float;
  fleet_loops : int;  (* 0 = skip the fleet throughput phase *)
  fleet_workers : int;
  imsc : string option;  (* the imsc binary the fleet phase spawns *)
}

let opts =
  let usage_exit msg =
    Printf.eprintf "bench: %s\n" msg;
    prerr_endline
      "usage: dune exec bench/main.exe -- [--quick] [--jobs N] \
       [--closure-jobs N] [--closure-threshold M] [--metrics FILE] \
       [--bench-json FILE] [--journal FILE] [--resume FILE] [--profile \
       FILE] [--baseline BENCH.json] [--tolerance F] [--time-tolerance F] \
       [--status-file FILE] [--status-interval SEC] [--fleet-loops N] \
       [--fleet-workers N] [--imsc PATH]";
    exit 2
  in
  let quick = ref false in
  let jobs = ref (Ims_exec.Exec.default_jobs ()) in
  let closure_jobs = ref 1 in
  let closure_threshold = ref 64 in
  let metrics = ref None in
  let bench_json = ref None in
  let journal = ref None in
  let resume = ref None in
  let profile = ref None in
  let baseline = ref None in
  let tolerance = ref None in
  let time_tolerance = ref None in
  let status_file = ref None in
  let status_interval = ref 1.0 in
  let fleet_loops = ref 0 in
  let fleet_workers = ref 4 in
  let imsc = ref None in
  let argc = Array.length Sys.argv in
  let value flag i =
    if i + 1 >= argc then usage_exit (flag ^ " needs a value")
    else Sys.argv.(i + 1)
  in
  let float_value flag i =
    let v = value flag i in
    match float_of_string_opt v with
    | Some f when f >= 0.0 -> f
    | _ ->
        usage_exit
          (Printf.sprintf "%s expects a non-negative number, got %S" flag v)
  in
  let rec scan i =
    if i < argc then
      match Sys.argv.(i) with
      | "--quick" ->
          quick := true;
          scan (i + 1)
      | "--jobs" ->
          let v = value "--jobs" i in
          (match int_of_string_opt v with
          | Some n when n >= 1 -> jobs := n
          | _ ->
              usage_exit
                (Printf.sprintf "--jobs expects a positive integer, got %S" v));
          scan (i + 2)
      | "--closure-jobs" ->
          let v = value "--closure-jobs" i in
          (match int_of_string_opt v with
          | Some n when n >= 1 -> closure_jobs := n
          | _ ->
              usage_exit
                (Printf.sprintf
                   "--closure-jobs expects a positive integer, got %S" v));
          scan (i + 2)
      | "--closure-threshold" ->
          let v = value "--closure-threshold" i in
          (match int_of_string_opt v with
          | Some n when n >= 1 -> closure_threshold := n
          | _ ->
              usage_exit
                (Printf.sprintf
                   "--closure-threshold expects a positive integer, got %S" v));
          scan (i + 2)
      | "--metrics" ->
          metrics := Some (value "--metrics" i);
          scan (i + 2)
      | "--bench-json" ->
          bench_json := Some (value "--bench-json" i);
          scan (i + 2)
      | "--journal" ->
          journal := Some (value "--journal" i);
          scan (i + 2)
      | "--resume" ->
          resume := Some (value "--resume" i);
          scan (i + 2)
      | "--profile" ->
          profile := Some (value "--profile" i);
          scan (i + 2)
      | "--baseline" ->
          baseline := Some (value "--baseline" i);
          scan (i + 2)
      | "--tolerance" ->
          tolerance := Some (float_value "--tolerance" i);
          scan (i + 2)
      | "--time-tolerance" ->
          time_tolerance := Some (float_value "--time-tolerance" i);
          scan (i + 2)
      | "--status-file" ->
          status_file := Some (value "--status-file" i);
          scan (i + 2)
      | "--status-interval" ->
          status_interval := float_value "--status-interval" i;
          scan (i + 2)
      | "--fleet-loops" ->
          let v = value "--fleet-loops" i in
          (match int_of_string_opt v with
          | Some n when n >= 0 -> fleet_loops := n
          | _ ->
              usage_exit
                (Printf.sprintf
                   "--fleet-loops expects a non-negative integer, got %S" v));
          scan (i + 2)
      | "--fleet-workers" ->
          let v = value "--fleet-workers" i in
          (match int_of_string_opt v with
          | Some n when n >= 1 -> fleet_workers := n
          | _ ->
              usage_exit
                (Printf.sprintf
                   "--fleet-workers expects a positive integer, got %S" v));
          scan (i + 2)
      | "--imsc" ->
          imsc := Some (value "--imsc" i);
          scan (i + 2)
      | other -> usage_exit (Printf.sprintf "unknown argument %S" other)
  in
  scan 1;
  if !journal <> None && !resume <> None then
    usage_exit "--journal and --resume are mutually exclusive";
  {
    quick = !quick;
    jobs = !jobs;
    closure_jobs = !closure_jobs;
    closure_threshold = !closure_threshold;
    metrics_file = !metrics;
    bench_json = !bench_json;
    journal = !journal;
    resume = !resume;
    profile_file = !profile;
    baseline = !baseline;
    tolerance = !tolerance;
    time_tolerance = !time_tolerance;
    status_file = !status_file;
    status_interval = !status_interval;
    fleet_loops = !fleet_loops;
    fleet_workers = !fleet_workers;
    imsc = !imsc;
  }

let quick = opts.quick

(* Opt-in parallel MinDist closure.  The default (jobs = 1) leaves every
   closure on the serial path; results are value-identical either way,
   so the bench table stays byte-stable across this knob too. *)
let () =
  Mindist.set_parallel ~jobs:opts.closure_jobs
    ~threshold:opts.closure_threshold
let jobs = opts.jobs
let metrics_file = opts.metrics_file
let bench_json_file = opts.bench_json
let suite_count = if quick then 300 else Suite.default_count

(* Parallel map over independent loops: input order preserved, so every
   table below is byte-identical at any --jobs.  Phase wall-clock goes
   to stderr, keeping stdout deterministic. *)
let pmap f xs = Ims_exec.Exec.map_exn ~jobs f xs

(* All diagnostics go through one leveled logger; the Bracket style
   renders the historical "[bench] ..." stderr lines byte-for-byte, so
   the CI greps over them keep working. *)
let log =
  Ims_obs.Log.create ~style:Ims_obs.Log.Bracket ~human:stderr
    ~timer:Unix.gettimeofday ~tag:"bench" ()

(* Per-phase wall clock, accumulated for --bench-json and --profile
   (phase order is the execution order).  Stderr only — stdout stays
   deterministic. *)
let phase_log : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  phase_log := (name, dt) :: !phase_log;
  Ims_obs.Log.info log "%-18s %6.2fs  (%d job%s)" name dt jobs
    (if jobs = 1 then "" else "s");
  r

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

let sub title = Printf.printf "\n--- %s ---\n\n" title

let machine = Machine.cydra5 ()

(* ----------------------------------------------------------------------- *)
(* Per-loop measurement record.                                            *)
(* ----------------------------------------------------------------------- *)

type record = {
  case : Suite.case;
  n : int;  (* real operations *)
  mii : Mii.t;
  ii : int;
  sl : int;
  sl_lb : int;  (* lower bound on SL at the achieved II *)
  min_sl : int;  (* lower bound on SL at the MII (the table 3 row) *)
  steps_final : int;
  steps_total : int;
  nontrivial_sccs : int;  (* components with > 1 node *)
  scc_sizes : int list;  (* recurrence components incl. self-loops *)
  counters : Counters.t;
}

let measure_case ?trace ~budget_ratio (case : Suite.case) =
  let ddg = case.Suite.ddg in
  let counters = Counters.create () in
  let out = Ims.modulo_schedule ?trace ~budget_ratio ~counters ddg in
  let sl, ii =
    match out.Ims.schedule with
    | Some s -> (Schedule.length s, out.Ims.ii)
    | None ->
        (* Budget exhaustion on one loop degrades it to the (checked)
           acyclic list schedule instead of aborting the whole suite. *)
        let h = Ims_check.Fallback.harden ddg out in
        let s = h.Ims_check.Fallback.schedule in
        Ims_obs.Log.info log "%s degraded: %s" case.Suite.name
          (match h.Ims_check.Fallback.degraded with
          | Some r -> Ims_check.Fallback.describe r
          | None -> "unexpectedly rescued");
        (Schedule.length s, s.Schedule.ii)
  in
  let acyclic = List_sched.schedule_length ddg in
  (* One solver answers both IIs; the second lower bound is a
     pivot-restricted re-closure instead of a full Floyd-Warshall. *)
  let solver = Mindist.solver_full ddg in
  let sl_lb =
    Mii.schedule_length_lower_bound ~solver ddg ~ii ~acyclic_length:acyclic
  in
  let min_sl =
    Mii.schedule_length_lower_bound ~solver ddg ~ii:out.Ims.mii.Mii.mii
      ~acyclic_length:acyclic
  in
  let n_total = Ddg.n_total ddg in
  let scc = Ims_graph.Scc.compute ~n:n_total ~succs:(Ddg.real_succ_ids ddg) in
  let members = Ims_graph.Scc.members scc in
  let nontrivial_sccs =
    Array.to_list members |> List.filter (fun m -> List.length m > 1) |> List.length
  in
  let scc_sizes =
    Ims_graph.Scc.non_trivial ~succs:(Ddg.real_succ_ids ddg) scc
    |> Array.to_list |> List.map List.length
  in
  {
    case;
    n = Ddg.n_real ddg;
    mii = out.Ims.mii;
    ii;
    sl;
    sl_lb;
    min_sl;
    steps_final = out.Ims.steps_final;
    steps_total = out.Ims.steps_total;
    nontrivial_sccs;
    scc_sizes;
    counters;
  }

(* --journal FILE / --resume FILE: crash-safe journaling of the measure
   phase (the dominant cost of a full run).  One fsync'd JSONL record
   per measured loop; --resume replays journaled records (the suite
   cases are regenerated deterministically, so a record is keyed by its
   index) and measures only the rest, losing at most one loop of work
   to a crash.  The manifest pins suite size, quickness, budget, and
   the machine model; resume refuses on mismatch. *)

let record_to_json r =
  let open Ims_obs in
  Json.Obj
    [
      ("n", Json.Int r.n);
      ("resmii", Json.Int r.mii.Mii.resmii);
      ("recmii", Json.Int r.mii.Mii.recmii);
      ("mii", Json.Int r.mii.Mii.mii);
      ("ii", Json.Int r.ii);
      ("sl", Json.Int r.sl);
      ("sl_lb", Json.Int r.sl_lb);
      ("min_sl", Json.Int r.min_sl);
      ("steps_final", Json.Int r.steps_final);
      ("steps_total", Json.Int r.steps_total);
      ("nontrivial_sccs", Json.Int r.nontrivial_sccs);
      ("scc_sizes", Json.List (List.map (fun s -> Json.Int s) r.scc_sizes));
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Counters.to_assoc r.counters))
      );
    ]

let record_of_json (case : Suite.case) j =
  let open Ims_obs in
  let kvs =
    match j with
    | Json.Obj kvs -> kvs
    | _ -> failwith "bench: malformed journal record"
  in
  let int k =
    match List.assoc_opt k kvs with
    | Some (Json.Int v) -> v
    | _ -> failwith (Printf.sprintf "bench: journal record missing %S" k)
  in
  let counters =
    (* [Counters.of_assoc] owns the key list — the journal schema tracks
       the canonical field table automatically. *)
    match List.assoc_opt "counters" kvs with
    | Some (Json.Obj cs) ->
        Counters.of_assoc
          (List.filter_map
             (function k, Json.Int v -> Some (k, v) | _ -> None)
             cs)
    | _ -> Counters.create ()
  in
  let scc_sizes =
    match List.assoc_opt "scc_sizes" kvs with
    | Some (Json.List l) ->
        List.map (function Json.Int v -> v | _ -> 0) l
    | _ -> []
  in
  {
    case;
    n = int "n";
    mii =
      { Mii.resmii = int "resmii"; recmii = int "recmii"; mii = int "mii" };
    ii = int "ii";
    sl = int "sl";
    sl_lb = int "sl_lb";
    min_sl = int "min_sl";
    steps_final = int "steps_final";
    steps_total = int "steps_total";
    nontrivial_sccs = int "nontrivial_sccs";
    scc_sizes;
    counters;
  }

(* The measure manifest pins everything that shapes the per-loop
   results; it keys both journal resume ("same run?") and the bench
   snapshot's meta ("which suite was this trajectory point measured
   on?"). *)
let measure_manifest_hash =
  lazy
    (Ims_exec.Journal.manifest_hash
       [
         "bench-measure";
         string_of_int suite_count;
         string_of_bool quick;
         "budget=6.0";
         Format.asprintf "%a" Machine.pp machine;
       ])

(* One job per loop; the shard collects the job's counters and (when
   profiling) its phase spans, so [Exec.run ?profile] can fold them
   into the run profile in input order. *)
let measure_job (shard : Ims_exec.Shard.t) case =
  let r =
    measure_case ~trace:shard.Ims_exec.Shard.trace ~budget_ratio:6.0 case
  in
  Counters.add shard.Ims_exec.Shard.counters r.counters;
  r

let measure_records ?profile ?progress cases =
  match (opts.journal, opts.resume) with
  | None, None ->
      let outcomes, _, _ =
        Ims_exec.Exec.run ~jobs ?profile ?progress ~timer:Unix.gettimeofday
          ~f:measure_job cases
      in
      List.mapi (fun i o -> Ims_exec.Outcome.get ~job:i o) outcomes
  | _ ->
      let module J = Ims_exec.Journal in
      let hash = Lazy.force measure_manifest_hash in
      let n = List.length cases in
      let completed : (int, Ims_obs.Json.t) Hashtbl.t = Hashtbl.create 97 in
      (match opts.resume with
      | None -> ()
      | Some path -> (
          match J.read ~path with
          | Error msg -> failwith ("bench: cannot resume: " ^ msg)
          | Ok r ->
              if r.J.manifest.J.tool <> "bench-measure" then
                failwith
                  (Printf.sprintf "bench: %s is a %S journal, not a \
                                   bench-measure one" path r.J.manifest.J.tool);
              if r.J.manifest.J.hash <> hash then
                failwith
                  (Printf.sprintf
                     "bench: manifest mismatch: journal %s was written with \
                      a different suite, flags, or machine — refusing to \
                      reuse its results"
                     path);
              if r.J.torn then
                Ims_obs.Log.warn log "ignoring torn final record in %s" path;
              List.iter
                (fun (i, line) ->
                  if i >= 0 && i < n then Hashtbl.replace completed i line)
                r.J.entries;
              Ims_obs.Log.info log
                "resuming — %d of %d loop(s) already journaled"
                (Hashtbl.length completed) n));
      let writer =
        match (opts.resume, opts.journal) with
        | Some path, _ -> J.reopen ~path ()
        | None, Some path ->
            J.create ~path
              { J.version = J.format_version; tool = "bench-measure"; hash;
                jobs = n; parts = [] }
        | None, None -> assert false
      in
      let indexed = List.mapi (fun i c -> (i, c)) cases in
      let pending =
        List.filter (fun (i, _) -> not (Hashtbl.mem completed i)) indexed
      in
      let pending_arr = Array.of_list pending in
      let outcomes, _, _ =
        Ims_exec.Exec.run ~jobs ?profile ?progress ~timer:Unix.gettimeofday
          ~on_result:(fun i outcome ->
            match outcome with
            | Ims_exec.Outcome.Done r ->
                J.append writer ~index:(fst pending_arr.(i)) (record_to_json r)
            | _ -> ())
          ~f:(fun shard (_, case) -> measure_job shard case)
          pending
      in
      J.close writer;
      let fresh : (int, record) Hashtbl.t = Hashtbl.create 97 in
      List.iter2
        (fun (i, _) o ->
          Hashtbl.replace fresh i (Ims_exec.Outcome.get ~job:i o))
        pending outcomes;
      List.map
        (fun (i, case) ->
          match Hashtbl.find_opt fresh i with
          | Some r -> r
          | None -> record_of_json case (Hashtbl.find completed i))
        indexed

let dump_metrics file records =
  let open Ims_obs in
  let line r =
    Json.Obj
      ([
         ("name", Json.String r.case.Suite.name);
         ("n", Json.Int r.n);
         ("resmii", Json.Int r.mii.Mii.resmii);
         ("recmii", Json.Int r.mii.Mii.recmii);
         ("mii", Json.Int r.mii.Mii.mii);
         ("ii", Json.Int r.ii);
         ("sl", Json.Int r.sl);
         ("min_sl", Json.Int r.min_sl);
         ("steps_final", Json.Int r.steps_final);
         ("steps_total", Json.Int r.steps_total);
         ("nontrivial_sccs", Json.Int r.nontrivial_sccs);
         ("entry_freq", Json.Int r.case.Suite.entry_freq);
         ("loop_freq", Json.Int r.case.Suite.loop_freq);
       ]
      @ List.map
          (fun (k, v) -> ("counters." ^ k, Json.Int v))
          (Counters.to_assoc r.counters))
  in
  let oc = open_out file in
  List.iter
    (fun r ->
      output_string oc (Json.to_string (line r));
      output_char oc '\n')
    records;
  close_out oc;
  Printf.printf "\nper-loop metrics written to %s (%d lines)\n" file
    (List.length records)

(* Where this trajectory point was measured: pinned to the snapshot so
   a --baseline comparison months later can say which commit, host, and
   suite produced the numbers.  Best-effort — a bench run outside a git
   checkout still produces a valid snapshot. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

(* The --bench-json snapshot: one JSON object for the whole run — phase
   wall-clock timings, the suite-total table 4 counters, the
   achieved-II histogram, and provenance meta — the trajectory point a
   perf regression is judged against (see BENCH_4.json at the repo
   root). *)
(* Filled by the fleet throughput phase (--fleet-loops > 0): loops,
   workers, wall seconds, corpus bytes.  loops_per_s is the headline
   fleet-scale metric BENCH_6 gates on. *)
let fleet_stats : (int * int * float * int) option ref = ref None

let bench_snapshot_json records =
  let open Ims_obs in
  let phases =
    List.rev_map
      (fun (name, dt) ->
        Json.Obj [ ("name", Json.String name); ("seconds", Json.Float dt) ])
      !phase_log
  in
  let totals = Counters.merge (List.map (fun r -> r.counters) records) in
  let hist = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace hist r.ii
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist r.ii)))
    records;
  let ii_histogram =
    Hashtbl.fold (fun ii count acc -> (ii, count) :: acc) hist []
    |> List.sort compare
    |> List.map (fun (ii, count) ->
           Json.Obj [ ("ii", Json.Int ii); ("loops", Json.Int count) ])
  in
  Json.Obj
    ([
      ("suite_count", Json.Int (List.length records));
      ("quick", Json.Bool quick);
      ("jobs", Json.Int jobs);
      ("phases", Json.List phases);
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Counters.to_assoc totals))
      );
      ("ii_histogram", Json.List ii_histogram);
    ]
    @ (match !fleet_stats with
      | None -> []
      | Some (loops, workers, seconds, corpus_bytes) ->
          [
            ( "fleet",
              Json.Obj
                [
                  ("loops", Json.Int loops);
                  ("workers", Json.Int workers);
                  ("seconds", Json.Float seconds);
                  ( "loops_per_s",
                    Json.Float (float_of_int loops /. Float.max seconds 1e-9)
                  );
                  ("corpus_bytes", Json.Int corpus_bytes);
                ] );
          ])
    @ [
      ( "meta",
        Json.Obj
          [
            ("commit", Json.String (git_commit ()));
            ("hostname", Json.String (Unix.gethostname ()));
            ("jobs", Json.Int jobs);
            ("suite_hash", Json.String (Lazy.force measure_manifest_hash));
          ] );
    ])

let dump_bench_json file snapshot =
  write_file file (Ims_obs.Json.to_string snapshot);
  Ims_obs.Log.info log "run summary written to %s" file

(* --baseline BENCH.json: the perf-regression gate.  Counters and the
   mean achieved II are deterministic, so they get the tight tolerance;
   phase seconds are runner wall clock and get the loose one.  Any
   regression names its metric on stderr and fails the run. *)
let check_baseline file snapshot =
  let open Ims_obs in
  let contents =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string contents with
  | Error msg -> failwith (Printf.sprintf "bench: cannot parse %s: %s" file msg)
  | Ok baseline -> (
      match
        Baseline.compare_snapshots ?tolerance:opts.tolerance
          ?time_tolerance:opts.time_tolerance ~baseline ~current:snapshot ()
      with
      | [] -> Log.info log "baseline %s: no regressions" file
      | regressions ->
          List.iter
            (fun r -> Log.error log "regression vs %s — %s" file (Baseline.describe r))
            regressions;
          exit 1)

(* The fleet-scale throughput phase (--fleet-loops N): stream a seeded
   corpus to disk with the same writer `imsc corpus gen` uses, run
   `imsc fleet` over it as real worker subprocesses, and record loops
   scheduled per second.  No process — bench included — ever holds more
   than one shard's loops in memory, which is what lets the same phase
   measure a 1,000,000-loop corpus (BENCH_6's headline).  Stdout keeps
   only deterministic counts; wall clock goes to stderr and to the
   snapshot's "fleet" section, where the baseline gate compares it. *)
let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let fleet_phase () =
  if opts.fleet_loops > 0 then begin
    let imsc =
      match opts.imsc with
      | Some p -> p
      | None ->
          (* bench runs as _build/default/bench/main.exe; the sibling
             CLI is _build/default/bin/imsc.exe. *)
          Filename.concat
            (Filename.dirname (Filename.dirname Sys.executable_name))
            (Filename.concat "bin" "imsc.exe")
    in
    section "FLEET — sharded multi-process scheduling throughput";
    if not (Sys.file_exists imsc) then
      Ims_obs.Log.warn log
        "fleet phase skipped: no imsc binary at %s (pass --imsc PATH)" imsc
    else begin
      let loops = opts.fleet_loops and workers = opts.fleet_workers in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "imsc-bench-fleet-%d" (Unix.getpid ()))
      in
      rm_rf dir;
      Unix.mkdir dir 0o700;
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let corpus = Filename.concat dir "corpus.ilb" in
      let report = Filename.concat dir "merged.jsonl" in
      let rundir = Filename.concat dir "run" in
      let written =
        timed "fleet corpus gen" (fun () ->
            Corpus.generate machine ~seed:1994 ~count:loops ~path:corpus)
      in
      let corpus_bytes = (Unix.stat corpus).Unix.st_size in
      let t0 = Unix.gettimeofday () in
      let pid =
        Unix.create_process imsc
          [|
            imsc;
            "fleet";
            "--corpus";
            corpus;
            "--workers";
            string_of_int workers;
            "--jobs";
            "1";
            (* Group journal fsyncs: at a million records, per-append
               fsync would measure the disk, not the scheduler.
               Completed writes still survive kill -9 either way. *)
            "--journal-sync";
            "64";
            "--dir";
            rundir;
            "--report";
            report;
          |]
          Unix.stdin Unix.stdout Unix.stderr
      in
      let _, status = Unix.waitpid [] pid in
      let dt = Unix.gettimeofday () -. t0 in
      phase_log := ("fleet run", dt) :: !phase_log;
      (match status with
      (* Exit 2 is the batch protocol's "degraded": every loop got a
         (possibly fallback) schedule and the merged report is
         complete.  At a million seeded loops a handful of degraded
         records is expected; only exit 1 (casualties / config error)
         fails the phase. *)
      | Unix.WEXITED (0 | 2) -> ()
      | Unix.WEXITED c ->
          failwith (Printf.sprintf "bench: fleet phase failed (exit %d)" c)
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
          failwith (Printf.sprintf "bench: fleet phase killed (signal %d)" s));
      let report_lines =
        let ic = open_in_bin report in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = ref 0 in
            (try
               while true do
                 ignore (input_line ic);
                 incr n
               done
             with End_of_file -> ());
            !n)
      in
      if report_lines <> loops then
        failwith
          (Printf.sprintf
             "bench: fleet merged report holds %d line(s), expected %d"
             report_lines loops);
      Printf.printf
        "fleet: %d loop(s) scheduled across %d worker process(es); merged \
         report complete (%d lines)\n"
        written workers report_lines;
      Ims_obs.Log.info log
        "fleet: %.0f loops/s (%d loops, %d workers, %.1fs wall, %d corpus \
         bytes)"
        (float_of_int loops /. Float.max dt 1e-9)
        loops workers dt corpus_bytes;
      fleet_stats := Some (loops, workers, dt, corpus_bytes)
    end
  end

(* The production scheme of sections 2.2/3: MII via the ResMII-seeded
   search (no exact RecMII), then iterative scheduling — used for the
   figure 6 sweep and the table 4 complexity fits so the counters match
   what a production compiler would execute. *)
let schedule_production ~budget_ratio (case : Suite.case) =
  let ddg = case.Suite.ddg in
  let counters = Counters.create () in
  let mii = Mii.compute_fast ~counters ddg in
  let n_total = Ddg.n_total ddg in
  let budget = max 1 (int_of_float (budget_ratio *. float_of_int n_total)) in
  let prep = Ims.prepare ddg in
  let rec attempt ii =
    match Ims.iterative_schedule ~counters ~prep ddg ~ii ~budget with
    | Some s -> (s, ii)
    | None ->
        if ii > mii + 1000 then failwith "bench: production scheme diverged";
        attempt (ii + 1)
  in
  let s, ii = attempt mii in
  (s, ii, mii, counters)

(* ----------------------------------------------------------------------- *)
(* Figure 1                                                                 *)
(* ----------------------------------------------------------------------- *)

let figure1 () =
  section "FIGURE 1 — reservation tables for a pipelined add and multiply";
  let m = Machine.figure1 () in
  let table name =
    (List.hd (Machine.opcode m name).Opcode.alternatives).Opcode.table
  in
  Reservation.pp_grid ~resources:m.Machine.resources Format.std_formatter
    [ ("(a) pipelined add", table "add"); ("(b) pipelined multiply", table "mul") ];
  Format.print_flush ();
  (* The two collisions discussed in section 2.1. *)
  let mrt = Mrt.linear m ~horizon:64 in
  Mrt.reserve mrt ~op:0 (table "mul") ~time:10;
  Printf.printf "mul issued at t=10:\n";
  Printf.printf "  add at t=10 fits: %b   (source-bus collision expected)\n"
    (Mrt.fits mrt (table "add") ~time:10);
  Printf.printf "  add at t=12 fits: %b   (result-bus collision expected)\n"
    (Mrt.fits mrt (table "add") ~time:12);
  Printf.printf "  add at t=13 fits: %b\n" (Mrt.fits mrt (table "add") ~time:13)

(* ----------------------------------------------------------------------- *)
(* Table 1                                                                  *)
(* ----------------------------------------------------------------------- *)

let table1 () =
  section "TABLE 1 — delay formulae for dependence edges";
  let rows =
    List.concat_map
      (fun (kind, kname) ->
        List.map
          (fun (pl, sl) ->
            [
              kname;
              string_of_int pl;
              string_of_int sl;
              string_of_int (Dep.delay Dep.Vliw kind ~pred_latency:pl ~succ_latency:sl);
              string_of_int
                (Dep.delay Dep.Conservative kind ~pred_latency:pl ~succ_latency:sl);
            ])
          [ (20, 4); (5, 4); (4, 5); (1, 1) ])
      [ (Dep.Flow, "flow"); (Dep.Anti, "anti"); (Dep.Output, "output") ]
  in
  print_string
    (Text_table.render
       ~headers:[ "dependence"; "lat(pred)"; "lat(succ)"; "delay(VLIW)"; "delay(conservative)" ]
       rows);
  print_newline ();
  print_endline "flow: lat(pred) | anti: 1-lat(succ), conservatively 0 |";
  print_endline "output: 1+lat(pred)-lat(succ), conservatively lat(pred)."

(* ----------------------------------------------------------------------- *)
(* Table 2                                                                  *)
(* ----------------------------------------------------------------------- *)

let table2 () =
  section "TABLE 2 — the Cydra 5 machine model used by the scheduler";
  Format.printf "%a@." Machine.pp machine;
  Format.print_flush ();
  print_endline "Load latency is the experiments' 20 cycles (not the product";
  print_endline "compiler's 26); divide/square root block the multiplier."

(* ----------------------------------------------------------------------- *)
(* Table 3                                                                  *)
(* ----------------------------------------------------------------------- *)

(* The paper's published row values, for side-by-side comparison:
   (min possible, freq of min, median, mean, max). *)
let paper_table3 =
  [
    ("Number of operations", (4.0, 0.004, 12.00, 19.54, 163.0));
    ("MII", (1.0, 0.286, 3.00, 11.41, 163.0));
    ("Minimum modulo schedule length", (4.0, 0.045, 31.00, 35.79, 211.0));
    ("max(0, RecMII - ResMII)", (0.0, 0.840, 0.00, 4.54, 115.0));
    ("Number of non-trivial SCCs", (0.0, 0.773, 0.00, 0.32, 6.0));
    ("Number of nodes per SCC", (1.0, 0.930, 1.00, 1.30, 42.0));
    ("II - MII", (0.0, 0.960, 0.00, 0.10, 20.0));
    ("II / MII", (1.0, 0.960, 1.00, 1.01, 1.50));
    ("Schedule length (ratio)", (1.0, 0.484, 1.02, 1.07, 2.03));
    ("Execution time (ratio)", (1.0, 0.539, 1.00, 1.05, 1.50));
    ("Number of nodes scheduled (ratio)", (1.0, 0.900, 1.00, 1.03, 4.33));
  ]

let exec_ratio r =
  let actual =
    Suite.execution_time r.case ~sl:r.sl ~ii:r.ii |> float_of_int
  in
  let lower =
    Suite.execution_time r.case ~sl:r.min_sl ~ii:r.mii.Mii.mii |> float_of_int
  in
  if lower <= 0.0 then None else Some (actual /. lower)

let table3 records =
  section
    (Printf.sprintf
       "TABLE 3 — distribution statistics over %d loops (BudgetRatio 6)"
       (List.length records));
  let fl = float_of_int in
  let rows =
    [
      ("Number of operations", 4.0, List.map (fun r -> fl r.n) records);
      ("MII", 1.0, List.map (fun r -> fl r.mii.Mii.mii) records);
      ("Minimum modulo schedule length", 4.0, List.map (fun r -> fl r.min_sl) records);
      ( "max(0, RecMII - ResMII)",
        0.0,
        List.map (fun r -> fl (max 0 (r.mii.Mii.recmii - r.mii.Mii.resmii))) records );
      ( "Number of non-trivial SCCs",
        0.0,
        List.map (fun r -> fl r.nontrivial_sccs) records );
      ( "Number of nodes per SCC",
        1.0,
        List.concat_map (fun r -> List.map fl r.scc_sizes) records );
      ("II - MII", 0.0, List.map (fun r -> fl (r.ii - r.mii.Mii.mii)) records);
      ( "II / MII",
        1.0,
        List.map (fun r -> fl r.ii /. fl r.mii.Mii.mii) records );
      ( "Schedule length (ratio)",
        1.0,
        List.map (fun r -> fl r.sl /. fl (max 1 r.sl_lb)) records );
      ( "Execution time (ratio)",
        1.0,
        List.filter_map exec_ratio records );
      ( "Number of nodes scheduled (ratio)",
        1.0,
        List.map (fun r -> fl r.steps_final /. fl (r.n + 2)) records );
    ]
  in
  let fmt v = Printf.sprintf "%.2f" v in
  let table_rows =
    List.map2
      (fun (name, min_possible, samples) (pname, (pmin, pfreq, pmed, pmean, pmax)) ->
        assert (name = pname);
        let s = Distribution.summarize ~min_possible samples in
        [
          name;
          fmt min_possible;
          fmt s.Distribution.freq_of_min;
          fmt s.Distribution.median;
          fmt s.Distribution.mean;
          fmt s.Distribution.max_seen;
          Printf.sprintf "| %.2f" pmin;
          fmt pfreq;
          fmt pmed;
          fmt pmean;
          fmt pmax;
        ])
      rows paper_table3
  in
  print_string
    (Text_table.render
       ~headers:
         [
           "measurement (ours | paper)"; "min"; "f(min)"; "median"; "mean"; "max";
           "| min"; "f(min)"; "median"; "mean"; "max";
         ]
       table_rows)

(* ----------------------------------------------------------------------- *)
(* Section 4.3 headline claims                                              *)
(* ----------------------------------------------------------------------- *)

let headline records =
  section "SECTION 4.3/5 — headline schedule-quality claims (BudgetRatio 6)";
  let total = List.length records in
  let delta r = r.ii - r.mii.Mii.mii in
  let count p = List.length (List.filter p records) in
  let optimal = count (fun r -> delta r = 0) in
  Printf.printf "loops at II = MII:        %4d / %d = %.1f%%   (paper: 96%%)\n"
    optimal total
    (100.0 *. float_of_int optimal /. float_of_int total);
  Printf.printf "DeltaII = 1:              %4d              (paper: 32 of 1327)\n"
    (count (fun r -> delta r = 1));
  Printf.printf "DeltaII = 2:              %4d              (paper: 8)\n"
    (count (fun r -> delta r = 2));
  Printf.printf "DeltaII > 2:              %4d              (paper: 11)\n"
    (count (fun r -> delta r > 2));
  let once = count (fun r -> r.steps_final = r.n + 2) in
  Printf.printf
    "each op scheduled once:   %4d / %d = %.1f%%   (paper: 90%%)\n" once total
    (100.0 *. float_of_int once /. float_of_int total);
  let executed = List.filter (fun r -> r.case.Suite.loop_freq > 0) records in
  Printf.printf "executed loops:           %4d              (paper: 597 of 1327)\n"
    (List.length executed);
  let at_bound =
    List.length
      (List.filter (fun r -> match exec_ratio r with Some x -> x < 1.0 +. 1e-9 | None -> false) executed)
  in
  Printf.printf
    "execution at lower bound: %4d / %d = %.1f%%   (paper: 54%%)\n" at_bound
    (List.length executed)
    (100.0 *. float_of_int at_bound /. float_of_int (List.length executed));
  let agg num den =
    List.fold_left (fun a r -> a +. num r) 0.0 executed
    /. List.fold_left (fun a r -> a +. den r) 0.0 executed
  in
  let dilation =
    agg
      (fun r -> float_of_int (Suite.execution_time r.case ~sl:r.sl ~ii:r.ii))
      (fun r ->
        float_of_int
          (Suite.execution_time r.case ~sl:r.min_sl ~ii:r.mii.Mii.mii))
    -. 1.0
  in
  Printf.printf
    "aggregate execution time: %.1f%% over the (unachievable) lower bound\n"
    (100.0 *. dilation)

(* ----------------------------------------------------------------------- *)
(* Figure 6                                                                 *)
(* ----------------------------------------------------------------------- *)

let figure6 cases =
  section "FIGURE 6 — execution-time dilation and scheduling inefficiency vs BudgetRatio";
  let ratios =
    [ 1.0; 1.25; 1.5; 1.75; 2.0; 2.25; 2.5; 2.75; 3.0; 3.5; 4.0 ]
  in
  let rows =
    List.map
      (fun budget_ratio ->
        (* One independent job per loop; the fold below runs in case
           order, so the float accumulation order (and hence the bytes
           printed) matches the serial sweep exactly. *)
        let per_case =
          pmap
            (fun (case : Suite.case) ->
              let s, ii, mii, counters =
                schedule_production ~budget_ratio case
              in
              let actual, lower =
                if case.Suite.loop_freq > 0 then begin
                  let acyclic = List_sched.schedule_length case.Suite.ddg in
                  let sl_lb =
                    Mii.schedule_length_lower_bound case.Suite.ddg ~ii:mii
                      ~acyclic_length:acyclic
                  in
                  ( float_of_int
                      (Suite.execution_time case ~sl:(Schedule.length s) ~ii),
                    float_of_int (Suite.execution_time case ~sl:sl_lb ~ii:mii)
                  )
                end
                else (0.0, 0.0)
              in
              ( counters.Counters.sched_steps,
                Ddg.n_total case.Suite.ddg,
                actual,
                lower ))
            cases
        in
        let steps = ref 0 and ops = ref 0 in
        let actual = ref 0.0 and lower = ref 0.0 in
        List.iter
          (fun (s, o, a, l) ->
            steps := !steps + s;
            ops := !ops + o;
            actual := !actual +. a;
            lower := !lower +. l)
          per_case;
        let dilation = 100.0 *. ((!actual /. !lower) -. 1.0) in
        let inefficiency = float_of_int !steps /. float_of_int !ops in
        (budget_ratio, dilation, inefficiency))
      ratios
  in
  print_string
    (Text_table.render
       ~headers:[ "BudgetRatio"; "exec dilation %"; "sched inefficiency" ]
       (List.map
          (fun (r, d, i) ->
            [ Printf.sprintf "%.2f" r; Printf.sprintf "%.2f" d; Printf.sprintf "%.2f" i ])
          rows));
  print_newline ();
  print_endline
    "paper anchors: dilation 5.2% at 1.0, 2.9% at 1.75, ~2.8% at 2.0 and";
  print_endline
    "flat beyond; inefficiency 2.65 at 1.0, minimum 1.55 at 1.75, 1.59 at";
  print_endline "2.0, rising slowly after — the knee at BudgetRatio ~2."

(* ----------------------------------------------------------------------- *)
(* Table 4                                                                  *)
(* ----------------------------------------------------------------------- *)

let table4 cases =
  section "TABLE 4 — computational complexity: worst case vs empirical LMS fits";
  (* Counters from the production scheme at the recommended BudgetRatio. *)
  let points =
    pmap
      (fun (case : Suite.case) ->
        let _, _, _, counters = schedule_production ~budget_ratio:2.0 case in
        (float_of_int (Ddg.n_real case.Suite.ddg), case, counters))
      cases
  in
  let pts f = List.map (fun (n, case, c) -> (n, f case c)) points in
  let edges_fit =
    (* Like the paper's E, counting one edge per operation's predicate /
       control input: our START/STOP pseudo edges play that role. *)
    Regression.fit_through_origin
      (pts (fun case _ ->
           float_of_int
             (Ddg.edge_count case.Suite.ddg + (2 * Ddg.n_real case.Suite.ddg))))
  in
  let scc_fit =
    Regression.fit_through_origin
      (pts (fun _ c -> float_of_int c.Counters.scc_steps))
  in
  let resmii_fit =
    Regression.fit_through_origin
      (pts (fun _ c -> float_of_int c.Counters.resmii_steps))
  in
  let mindist_fit =
    Regression.fit_affine (pts (fun _ c -> float_of_int c.Counters.mindist_inner))
  in
  let heightr_fit =
    Regression.fit_through_origin
      (pts (fun _ c -> float_of_int c.Counters.heightr_inner))
  in
  let estart_fit =
    Regression.fit_through_origin
      (pts (fun _ c -> float_of_int c.Counters.estart_inner))
  in
  let findslot_fit =
    Regression.fit_quadratic
      (pts (fun _ c -> float_of_int c.Counters.findslot_inner))
  in
  let sched_fit =
    Regression.fit_quadratic
      (pts (fun _ c -> float_of_int c.Counters.sched_steps))
  in
  print_string
    (Text_table.render
       ~headers:[ "activity"; "worst case"; "empirical (ours)"; "paper's fit" ]
       [
         [ "dependence edges E (incl. pseudo)"; "O(N^2)"; Regression.describe edges_fit; "3.0036N" ];
         [ "SCC identification"; "O(N+E)"; Regression.describe scc_fit; "O(N)" ];
         [ "ResMII calculation"; "O(N)"; Regression.describe resmii_fit; "O(N)" ];
         [ "MII (MinDist inner loop)"; "O(N^3)"; Regression.describe mindist_fit;
           "11.9133N + 3.0474" ];
         [ "HeightR calculation"; "O(NE)"; Regression.describe heightr_fit; "4.5021N" ];
         [ "Estart (preds examined)"; "-"; Regression.describe estart_fit; "3.3321N" ];
         [ "FindTimeSlot (slots)"; "NP-complete"; Regression.describe findslot_fit;
           "0.0587N^2 + 0.2001N + 0.5" ];
         [ "iterative scheduling steps"; "NP-complete"; Regression.describe sched_fit;
           "O(N^2) empirically" ];
       ]);
  print_newline ();
  print_endline
    "as in the paper, no sub-activity grows worse than ~N^2 in practice;";
  print_endline
    "the MinDist residual variance is large because RecMII work depends on";
  print_endline "SCC structure, which is largely uncorrelated with N."

(* ----------------------------------------------------------------------- *)
(* Ablations                                                                *)
(* ----------------------------------------------------------------------- *)

let ablation_priorities cases =
  sub "Ablation: scheduling priority functions (section 3.2, BudgetRatio 1.5)";
  let subset = List.filteri (fun i _ -> i < 400) cases in
  let run priority =
    let optimal = ref 0 and ii_sum = ref 0.0 and steps = ref 0 and ops = ref 0 in
    List.iter
      (fun (case : Suite.case) ->
        let counters = Counters.create () in
        let out =
          Ims.modulo_schedule ~budget_ratio:1.5 ~max_delta_ii:64 ~counters
            ~priority case.Suite.ddg
        in
        (match out.Ims.schedule with
        | Some _ ->
            if out.Ims.ii = out.Ims.mii.Mii.mii then incr optimal;
            ii_sum := !ii_sum +. (float_of_int out.Ims.ii /. float_of_int out.Ims.mii.Mii.mii)
        | None ->
            (* Gave up within MII+64: count as a 3x miss. *)
            ii_sum := !ii_sum +. 3.0);
        steps := !steps + counters.Counters.sched_steps;
        ops := !ops + Ddg.n_total case.Suite.ddg)
      subset;
    let n = float_of_int (List.length subset) in
    ( 100.0 *. float_of_int !optimal /. n,
      !ii_sum /. n,
      float_of_int !steps /. float_of_int !ops )
  in
  let rows =
    List.map
      (fun (name, p) ->
        let opt, ratio, ineff = run p in
        [ name; Printf.sprintf "%.1f%%" opt; Printf.sprintf "%.3f" ratio;
          Printf.sprintf "%.2f" ineff ])
      [
        ("HeightR (paper)", Ims.Height_r);
        ("acyclic height (no II discount)", Ims.Acyclic_height);
        ("source order", Ims.Source_order);
        ("reverse order", Ims.Reverse_order);
      ]
  in
  print_string
    (Text_table.render
       ~headers:[ "priority"; "II=MII"; "mean II/MII"; "inefficiency" ]
       rows)

let ablation_recmii cases =
  sub "Ablation: RecMII by per-SCC MinDist search vs circuit enumeration (section 2.2)";
  let subset = List.filteri (fun i _ -> i < 600) cases in
  let t0 = Sys.time () in
  let counters = Counters.create () in
  List.iter
    (fun (c : Suite.case) -> ignore (Recmii.by_mindist ~counters c.Suite.ddg))
    subset;
  let t_mindist = Sys.time () -. t0 in
  let t0 = Sys.time () in
  let circuits = ref 0 and bailed = ref 0 in
  List.iter
    (fun (c : Suite.case) ->
      let ddg = c.Suite.ddg in
      match Recmii.by_circuits ~limit:100_000 ddg with
      | _ ->
          circuits :=
            !circuits
            + Ims_graph.Circuits.count ~limit:100_000
                ~n:(Ddg.n_total ddg)
                (fun v -> List.sort_uniq compare (Ddg.real_succ_ids ddg v))
      | exception Ims_graph.Circuits.Limit_exceeded -> incr bailed)
    subset;
  let t_circuits = Sys.time () -. t0 in
  Printf.printf "loops: %d; elementary circuits enumerated: %d (%d over limit)\n"
    (List.length subset) !circuits !bailed;
  Printf.printf "MinDist search:       %d inner-loop steps\n"
    counters.Counters.mindist_inner;
  (* Wall clock goes to stderr: stdout stays byte-identical across runs. *)
  Ims_obs.Log.info log "recmii ablation: mindist %.3fs, circuits %.3fs"
    t_mindist t_circuits;
  print_endline "both compute the same RecMII (cross-checked in the test suite)."

let ablation_delay_model () =
  sub "Ablation: VLIW vs conservative delay model (table 1) on the LFK loops";
  (* The two table 1 columns differ only on anti/output dependences, so the
     comparison is run on the non-DSA graphs (EVRs disabled); the DSA
     graphs carry flow edges only and the models coincide on those. *)
  let rows =
    List.filter_map
      (fun name ->
        let ii model =
          let ddg = Lfk.build ~model ~keep_false_deps:true machine name in
          match (Ims.modulo_schedule ddg).Ims.ii with
          | ii -> Some ii
          | exception Invalid_argument _ -> None
        in
        match (ii Dep.Vliw, ii Dep.Conservative) with
        | Some v, Some c when v <> c ->
            Some [ name; string_of_int v; string_of_int c ]
        | Some _, Some _ -> None
        | v, c ->
            (* A distance-0 anti/output circuit: the conservative delays
               make the predicated multi-def registers unschedulable
               without EVRs at any II. *)
            let show = function Some ii -> string_of_int ii | None -> "impossible" in
            Some [ name; show v; show c ])
      Lfk.names
  in
  if rows = [] then
    print_endline
      "no LFK loop changes II even without EVRs: the negative VLIW anti\n\
       delays never land on a critical circuit here."
  else begin
    print_string
      (Text_table.render ~headers:[ "loop"; "II (VLIW)"; "II (conservative)" ] rows);
    print_newline ();
    print_endline
      "(on the DSA-form graphs the suite actually schedules, only flow";
    print_endline
      "dependences remain and the two columns of table 1 coincide.)"
  end

let ablation_evr () =
  sub "Ablation: dynamic single assignment / EVRs (section 2.2)";
  let rows =
    List.filter_map
      (fun name ->
        let mii_of keep =
          match (Mii.compute (Lfk.build ~keep_false_deps:keep machine name)).Mii.mii with
          | mii -> Some mii
          | exception Invalid_argument _ -> None
        in
        match (mii_of true, mii_of false) with
        | Some without, Some with_evr when without <> with_evr ->
            Some
              [
                name; string_of_int with_evr; string_of_int without;
                Printf.sprintf "%.2fx" (float_of_int without /. float_of_int with_evr);
              ]
        | None, Some with_evr ->
            Some [ name; string_of_int with_evr; "impossible"; "inf" ]
        | _ -> None)
      Lfk.names
  in
  if rows = [] then print_endline "no LFK loop is constrained by false dependences."
  else begin
    print_string
      (Text_table.render
         ~headers:[ "loop"; "MII with EVRs"; "MII without"; "penalty" ]
         rows);
    print_newline ();
    print_endline
      "anti/output dependences put the register-reuse interval on the";
    print_endline "critical ratio; EVRs (or rotating registers) remove it."
  end

let ablation_code_schemas cases =
  sub "Ablation: code schemas — rotating registers vs modulo variable expansion";
  let subset = List.filteri (fun i _ -> i < 300) cases in
  let unrolls, ratios =
    List.fold_left
      (fun (unrolls, ratios) (case : Suite.case) ->
        match (Ims.modulo_schedule case.Suite.ddg).Ims.schedule with
        | None -> (unrolls, ratios)
        | Some s ->
            let mve = Ims_pipeline.Mve.expand s in
            let size = Ims_pipeline.Codegen.code_size Ims_pipeline.Codegen.Mve s in
            let n = Ddg.n_real case.Suite.ddg in
            ( float_of_int mve.Ims_pipeline.Mve.unroll :: unrolls,
              (float_of_int size /. float_of_int n) :: ratios ))
      ([], []) subset
  in
  let u = Distribution.summarize ~min_possible:1.0 unrolls in
  let r = Distribution.summarize ~min_possible:1.0 ratios in
  Printf.printf "kernel unroll (MVE):   median %.0f, mean %.2f, max %.0f\n"
    u.Distribution.median u.Distribution.mean u.Distribution.max_seen;
  Printf.printf
    "code expansion (MVE):  median %.1fx, mean %.1fx, max %.1fx of the body\n"
    r.Distribution.median r.Distribution.mean r.Distribution.max_seen;
  print_endline "with rotating registers + predication the expansion is 1.0x";
  print_endline
    "(kernel-only); the paper's conclusion sets 2.18x as the cost parity";
  print_endline "point for unrolling-based schedulers."

(* ----------------------------------------------------------------------- *)
(* Extensions beyond the paper's evaluation                                 *)
(* ----------------------------------------------------------------------- *)

let extension_fractional_mii cases =
  sub "Extension: fractional MII and pre-scheduling unrolling (section 1, step 7)";
  let subset = List.filteri (fun i _ -> i < 400) cases in
  let fractional = ref 0 and total_waste = ref 0.0 in
  let recovered = ref 0.0 and unrolled = ref 0 and considered = ref 0 in
  List.iter
    (fun (case : Suite.case) ->
      match Rational.of_ddg ~circuit_limit:50_000 case.Suite.ddg with
      | exception _ -> ()
      | r ->
          incr considered;
          let waste = Rational.degradation r ~factor:1 in
          if waste > 1e-9 then begin
            incr fractional;
            total_waste := !total_waste +. waste;
            let k = Rational.recommended_unroll case.Suite.ddg in
            if k > 1 && Ddg.n_real case.Suite.ddg * k <= 200 then begin
              let u = Unroll.by case.Suite.ddg k in
              let out = Ims.modulo_schedule u in
              (match out.Ims.schedule with
              | Some _ ->
                  incr unrolled;
                  let per_iter =
                    float_of_int out.Ims.ii /. float_of_int k
                  in
                  recovered :=
                    !recovered +. (waste -. ((per_iter /. r.Rational.mii) -. 1.0))
              | None -> ())
            end
          end)
    subset;
  Printf.printf
    "loops with a fractional rational MII: %d / %d (mean rounding waste %.1f%%)
"
    !fractional !considered
    (100.0 *. !total_waste /. float_of_int (max 1 !fractional));
  Printf.printf
    "unrolled by the recommended factor: %d loops, mean waste recovered %.1f%%
"
    !unrolled
    (100.0 *. !recovered /. float_of_int (max 1 !unrolled))

let extension_schedulers cases =
  sub "Extension: IMS vs Huff's slack vs swing modulo scheduling";
  let subset = List.filteri (fun i _ -> i < 300) cases in
  let rr_ims = ref 0 and rr_slack = ref 0 and rr_ims_c = ref 0 and rr_sms = ref 0 in
  let lt_ims = ref 0 and lt_slack = ref 0 and lt_ims_c = ref 0 and lt_sms = ref 0 in
  let same_slack = ref 0 and worse_slack = ref 0 in
  let same_sms = ref 0 and worse_sms = ref 0 and fail_sms = ref 0 in
  let n = ref 0 and n_sms = ref 0 in
  List.iter
    (fun (case : Suite.case) ->
      let a = Ims.modulo_schedule case.Suite.ddg in
      let b = Slack.modulo_schedule case.Suite.ddg in
      let c = Sms.modulo_schedule ~max_delta_ii:64 case.Suite.ddg in
      match (a.Ims.schedule, b.Ims.schedule) with
      | Some sa, Some sb ->
          incr n;
          if b.Ims.ii = a.Ims.ii then incr same_slack
          else if b.Ims.ii > a.Ims.ii then incr worse_slack;
          let sc = (Ims_pipeline.Compact.improve sa).Ims_pipeline.Compact.schedule in
          let rr s =
            (Ims_pipeline.Rotreg.allocate s).Ims_pipeline.Rotreg.file_size
          in
          rr_ims := !rr_ims + rr sa;
          rr_slack := !rr_slack + rr sb;
          rr_ims_c := !rr_ims_c + rr sc;
          lt_ims := !lt_ims + Ims_pipeline.Compact.total_lifetime sa;
          lt_slack := !lt_slack + Ims_pipeline.Compact.total_lifetime sb;
          lt_ims_c := !lt_ims_c + Ims_pipeline.Compact.total_lifetime sc;
          (match c.Ims.schedule with
          | Some ss ->
              incr n_sms;
              if c.Ims.ii = a.Ims.ii then incr same_sms
              else if c.Ims.ii > a.Ims.ii then incr worse_sms;
              rr_sms := !rr_sms + rr ss;
              lt_sms := !lt_sms + Ims_pipeline.Compact.total_lifetime ss
          | None -> incr fail_sms)
      | _ -> ())
    subset;
  Printf.printf
    "loops: %d; II vs IMS: slack %d same, %d worse; sms %d same, %d worse, %d unschedulable\n"
    !n !same_slack !worse_slack !same_sms !worse_sms !fail_sms;
  print_string
    (Text_table.render
       ~headers:
         [ "variant"; "loops"; "rotating regs (total)"; "lifetime cycles (total)" ]
       [
         [ "IMS (paper)"; string_of_int !n; string_of_int !rr_ims; string_of_int !lt_ims ];
         [ "Huff slack"; string_of_int !n; string_of_int !rr_slack; string_of_int !lt_slack ];
         [ "IMS + compaction"; string_of_int !n; string_of_int !rr_ims_c; string_of_int !lt_ims_c ];
         [ "swing (SMS)"; string_of_int !n_sms; string_of_int !rr_sms; string_of_int !lt_sms ];
       ]);
  Printf.printf
    "compaction saves %.1f%% lifetime and %.1f%% rotating registers at no II cost.\n"
    (100.0 *. (1.0 -. (float_of_int !lt_ims_c /. float_of_int !lt_ims)))
    (100.0 *. (1.0 -. (float_of_int !rr_ims_c /. float_of_int !rr_ims)));
  print_endline
    "SMS trades a few extra cycles of II (no displacement, only restart)";
  print_endline
    "for slightly lower pressure; its robustness hinges entirely on";
  print_endline
    "ordering recurrences first - with a naive order it strands width-one";
  print_endline
    "windows on busy units at every II, the paper's section 3 case for";
  print_endline "iterative scheduling."

let extension_cross_machine () =
  sub "Extension: the same loops on a modern 4-issue superscalar";
  let cydra = machine in
  let ss4 = Machine.superscalar4 () in
  let rec_ratio = ref 1.0 and rec_n = ref 0 in
  let res_ratio = ref 1.0 and res_n = ref 0 in
  List.iter
    (fun name ->
      let dc = Lfk.build cydra name in
      let ds = Ddg.map_machine dc ss4 in
      let oc = Ims.modulo_schedule dc and os = Ims.modulo_schedule ds in
      match (oc.Ims.schedule, os.Ims.schedule) with
      | Some _, Some _ ->
          let ratio = float_of_int oc.Ims.ii /. float_of_int os.Ims.ii in
          if oc.Ims.mii.Mii.recmii > oc.Ims.mii.Mii.resmii then begin
            rec_ratio := !rec_ratio *. ratio;
            incr rec_n
          end
          else begin
            res_ratio := !res_ratio *. ratio;
            incr res_n
          end
      | _ -> ())
    Lfk.names;
  Printf.printf
    "geometric-mean II(cydra5)/II(ss4) over the LFK loops:
";
  Printf.printf "  recurrence-bound loops: %.2fx (n=%d)
"
    (!rec_ratio ** (1.0 /. float_of_int (max 1 !rec_n)))
    !rec_n;
  Printf.printf "  resource-bound loops:   %.2fx (n=%d)
"
    (!res_ratio ** (1.0 /. float_of_int (max 1 !res_n)))
    !res_n;
  print_endline
    "short latencies shrink recurrences; resource-bound loops move only";
  print_endline "with unit counts — the scheduler itself is unchanged."

let extension_speculation () =
  sub "Extension: speculative code motion (section 1, step 5)";
  let named =
    List.map (fun n -> (n, Lfk.build machine n)) Lfk.names
    @ Kernels.all machine
  in
  let rows =
    List.filter_map
      (fun (name, ddg) ->
        let spec_ops = Optimize.speculable ddg in
        if spec_ops = [] then None
        else begin
          let run d =
            let out = Ims.modulo_schedule d in
            match out.Ims.schedule with
            | Some s -> Some (out.Ims.ii, Schedule.length s)
            | None -> None
          in
          match (run ddg, run (Optimize.speculate ddg)) with
          | Some (ii0, sl0), Some (ii1, sl1) ->
              Some
                [
                  name;
                  string_of_int (List.length spec_ops);
                  Printf.sprintf "%d/%d" ii0 sl0;
                  Printf.sprintf "%d/%d" ii1 sl1;
                  (if ii1 < ii0 then "II" else if sl1 < sl0 then "SL" else "-");
                ]
          | _ -> None
        end)
      named
  in
  if rows = [] then print_endline "no loop has speculable guarded operations."
  else begin
    print_string
      (Text_table.render
         ~headers:[ "loop"; "spec ops"; "II/SL guarded"; "II/SL speculative"; "gain" ]
         rows);
    print_newline ();
    print_endline
      "guard-select idioms (min/max reductions) stay guarded — their";
    print_endline
      "recurrence IS the select; speculation pays when a load or long";
    print_endline "arithmetic chain hides behind a predicate off the cycle."
  end

let extension_semantics cases =
  sub "Extension: semantic equivalence — pipelined vs sequential execution";
  let named =
    List.map (fun n -> ("lfk", Lfk.build machine n)) Lfk.names
    @ List.map (fun (n, d) -> (n, d)) (Kernels.all machine)
  in
  let synth =
    List.filteri (fun i _ -> i < 200) cases
    |> List.map (fun (c : Suite.case) -> (c.Suite.name, c.Suite.ddg))
  in
  let equivalent = ref 0 and unsupported = ref 0 and diverged = ref 0 in
  List.iter
    (fun (_, ddg) ->
      match (Ims.modulo_schedule ddg).Ims.schedule with
      | None -> ()
      | Some s ->
          if not (Ims_pipeline.Interp.supported ddg) then incr unsupported
          else
            match Ims_pipeline.Interp.check s with
            | Ok () -> incr equivalent
            | Error _ -> incr diverged)
    (named @ synth);
  Printf.printf
    "loops executed with real values, sequential vs overlapped issue order:\n";
  Printf.printf
    "  bit-identical results: %d;  skipped (partially-defined registers \
     under one-sided guards): %d;  divergent: %d\n"
    !equivalent !unsupported !diverged;
  print_endline
    "a divergence here would mean the scheduler was permitted to break a";
  print_endline "true dependence — none is."

let extension_exit_schemas () =
  sub "Extension: WHILE-loops and early exits (the conclusion's claim)";
  (* A search whose hit arrives after ~10 iterations: a counter climbs
     toward a threshold, and the decision is scaled by a loaded
     (positive) factor so the exit resolves a load latency late — which
     is what lets a naive schedule speculate the store. *)
  let b = Builder.create machine in
  let cnt = Builder.vreg b "cnt" and limit = Builder.vreg b "limit" in
  let c = Builder.vreg b "c" and w = Builder.vreg b "w" in
  let cx = Builder.vreg b "cx" in
  let aw = Builder.vreg b "aw" in
  ignore (Builder.add b ~opcode:"aadd" ~imm:100000.0 ~dsts:[ cnt ] ~srcs:[ (cnt, 1) ] ());
  ignore (Builder.add b ~opcode:"fcmp" ~dsts:[ c ] ~srcs:[ (limit, 0); (cnt, 0) ] ());
  ignore (Builder.add b ~opcode:"aadd" ~imm:24.0 ~dsts:[ aw ] ~srcs:[ (aw, 3) ] ());
  ignore (Builder.add b ~opcode:"load" ~dsts:[ w ] ~srcs:[ (aw, 0) ] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ cx ] ~srcs:[ (c, 0); (w, 0) ] ());
  let exit_op = Builder.add b ~opcode:"branch" ~dsts:[] ~srcs:[ (cx, 0) ] () in
  let aout = Builder.vreg b "aout" and payload = Builder.vreg b "payload" in
  ignore (Builder.add b ~opcode:"aadd" ~imm:24.0 ~dsts:[ aout ] ~srcs:[ (aout, 3) ] ());
  ignore (Builder.add b ~opcode:"store" ~dsts:[] ~srcs:[ (aout, 0); (payload, 0) ] ());
  let ddg = Builder.finish b in
  let run d =
    match (Ims.modulo_schedule d).Ims.schedule with
    | Some s -> s
    | None -> failwith "bench: search loop failed"
  in
  let naive = run ddg in
  let guarded = run (Ims_pipeline.Exit_schema.guard_stores ddg ~exit_op) in
  let p = Ims_pipeline.Exit_schema.plan guarded ~exit_op in
  Printf.printf
    "search loop with a mid-body exit: II %d naive (%d speculative stores),
"
    naive.Schedule.ii
    (List.length (Ims_pipeline.Exit_schema.speculation_hazards naive ~exit_op));
  Printf.printf
    "II %d with the store guard (0 hazards); exit resolves in stage %d and
"
    guarded.Schedule.ii p.Ims_pipeline.Exit_schema.exit_stage;
  Printf.printf
    "its own epilogue drains %d operations from older iterations.
"
    p.Ims_pipeline.Exit_schema.code_ops;
  (match
     ( Ims_pipeline.Interp.run_sequential_with_exit ddg ~exit_op ~max_trip:40,
       Ims_pipeline.Interp.run_pipelined_with_exit guarded ~exit_op
         ~max_trip:40 )
   with
  | (a, xa), (b, xb) ->
      Printf.printf
        "semantic replay: exit at iteration %d in both orders; state %s.\n"
        xa
        (if xa = xb && Ims_pipeline.Interp.equivalent a b then
           "bit-identical"
         else "DIVERGENT")
  | exception Invalid_argument _ -> ());
  print_endline
    "(the Cydra 5 compiler rejected such loops; the schema makes them";
  print_endline "modulo-schedulable, as the paper's conclusion asserts.)"

let extension_register_pressure () =
  sub "Extension: register-pressure-limited scheduling (finite rotating file)";
  (* How much II do the named loops pay as the rotating file shrinks? *)
  let budgets = [ 256; 128; 96; 64; 48; 32 ] in
  let loops = [ "lfk01"; "lfk03"; "lfk07"; "lfk12" ] in
  let rows =
    List.map
      (fun name ->
        let ddg = Lfk.build machine name in
        name
        :: List.map
             (fun b ->
               match
                 Ims_pipeline.Pressure.schedule ~max_retries:24 ddg
                   ~max_rotating:b
               with
               | Ok r ->
                   if r.Ims_pipeline.Pressure.ii_paid = 0 then "fits"
                   else Printf.sprintf "+%d II" r.Ims_pipeline.Pressure.ii_paid
               | Error _ -> "never")
             budgets)
      loops
  in
  print_string
    (Text_table.render
       ~headers:("loop" :: List.map (Printf.sprintf "%d RRs") budgets)
       rows);
  print_newline ();
  print_endline
    "a smaller rotating file forces a larger II: fewer overlapped";
  print_endline
    "iterations, shorter lifetimes.  'never' marks demand with a floor";
  print_endline
    "the II cannot buy back (back-substituted address chains hold";
  print_endline "distance+1 registers each at any II).";
  print_newline ();
  (* The Cydra 5 actually split its files: data vs address vs ICR. *)
  let class_rows =
    List.map
      (fun name ->
        let ddg = Lfk.build machine name in
        match (Ims.modulo_schedule ddg).Ims.schedule with
        | None -> [ name; "-"; "-"; "-" ]
        | Some s ->
            let files = Ims_pipeline.Rotreg.allocate_by_class s in
            let size cls =
              match List.assoc_opt cls files with
              | Some a -> string_of_int a.Ims_pipeline.Rotreg.file_size
              | None -> "0"
            in
            [ name; size Ims_pipeline.Regclass.Data;
              size Ims_pipeline.Regclass.Address;
              size Ims_pipeline.Regclass.Predicate ])
      [ "lfk01"; "lfk07"; "lfk13"; "lfk24" ]
  in
  print_string
    (Text_table.render
       ~headers:[ "loop"; "data RRs"; "address RRs"; "predicate RRs" ]
       class_rows);
  print_endline
    "split per class as on the real machine (data / address unit / ICR),";
  print_endline
    "the address chains stop crowding the data file; what remains in the";
  print_endline
    "data class is the true cost of hiding 20-cycle loads under a small II."

let extension_kernel_family () =
  sub "Extension: the micro-kernel family (BLAS-1, stencils, filters, reductions)";
  let rows =
    List.map
      (fun (name, ddg) ->
        let out = Ims.modulo_schedule ddg in
        match out.Ims.schedule with
        | None -> [ name; "-"; "-"; "-"; "-"; "-"; "-" ]
        | Some s ->
            let m = out.Ims.mii in
            let t = Ims_pipeline.Tradeoff.analyze s in
            [
              name;
              string_of_int (Ddg.n_real ddg);
              string_of_int out.Ims.ii;
              (if m.Mii.recmii > m.Mii.resmii then "rec" else "res");
              (if t.Ims_pipeline.Tradeoff.break_even = max_int then "never"
               else string_of_int t.Ims_pipeline.Tradeoff.break_even);
              Printf.sprintf "%.1fx" (Ims_pipeline.Tradeoff.speedup t ~trip:1000);
              string_of_int
                (Ims_pipeline.Regalloc.allocate s).Ims_pipeline.Regalloc.registers_used;
            ])
      (Kernels.all machine)
  in
  print_string
    (Text_table.render
       ~headers:[ "kernel"; "ops"; "II"; "bound"; "break-even"; "speedup@1k"; "kernel regs" ]
       rows);
  print_newline ();
  print_endline
    "break-even: the trip count from which the pipelined loop beats the";
  print_endline
    "unpipelined one (its prologue/epilogue ramp amortised) — the guard a";
  print_endline "compiler plants when the trip count is unknown."

(* ----------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks                                                *)
(* ----------------------------------------------------------------------- *)

let bechamel () =
  section "BECHAMEL — wall-clock micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let open Toolkit in
  let fig1_machine = Machine.figure1 () in
  let fig1_add =
    (List.hd (Machine.opcode fig1_machine "add").Opcode.alternatives).Opcode.table
  in
  let lfk03 = Lfk.build machine "lfk03" in
  let lfk07 = Lfk.build machine "lfk07" in
  let lfk20 = Lfk.build machine "lfk20" in
  let tests =
    Test.make_grouped ~name:"ims"
      [
        Test.make ~name:"figure1-mrt-probe"
          (Staged.stage (fun () ->
               let mrt = Mrt.create fig1_machine ~ii:7 in
               for t = 0 to 6 do
                 ignore (Mrt.fits mrt fig1_add ~time:t)
               done));
        Test.make ~name:"table1-delay"
          (Staged.stage (fun () ->
               ignore (Dep.delay Dep.Vliw Dep.Output ~pred_latency:5 ~succ_latency:4)));
        Test.make ~name:"table2-build-cydra5"
          (Staged.stage (fun () -> ignore (Machine.cydra5 ())));
        Test.make ~name:"table3-mii-median-loop"
          (Staged.stage (fun () -> ignore (Mii.compute lfk03)));
        Test.make ~name:"table3-ims-39op-loop"
          (Staged.stage (fun () -> ignore (Ims.modulo_schedule lfk07)));
        Test.make ~name:"figure6-ims-budget2"
          (Staged.stage (fun () ->
               ignore (Ims.modulo_schedule ~budget_ratio:2.0 lfk20)));
        Test.make ~name:"figure6-ims-budget6"
          (Staged.stage (fun () ->
               ignore (Ims.modulo_schedule ~budget_ratio:6.0 lfk20)));
        Test.make ~name:"table4-mindist-full"
          (Staged.stage (fun () -> ignore (Mindist.full lfk07 ~ii:9)));
        Test.make ~name:"baseline-list-sched"
          (Staged.stage (fun () -> ignore (List_sched.schedule lfk07)));
        Test.make ~name:"rival-slack-39op-loop"
          (Staged.stage (fun () -> ignore (Slack.modulo_schedule lfk07)));
        Test.make ~name:"rival-sms-39op-loop"
          (Staged.stage (fun () -> ignore (Sms.modulo_schedule lfk07)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
    |> List.map (fun (name, ns) ->
           let pretty =
             if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
             else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
             else Printf.sprintf "%.0f ns" ns
           in
           [ name; pretty ])
  in
  print_string (Text_table.render ~headers:[ "benchmark"; "time/run" ] rows);
  print_newline ();
  print_endline
    "the budget2/budget6 pair shows why the knee matters: above the";
  print_endline
    "minimum achievable II, extra budget only buys wasted attempts."

(* ----------------------------------------------------------------------- *)

let main () =
  Printf.printf
    "Iterative modulo scheduling — evaluation harness (%d-loop suite%s)\n"
    suite_count
    (if quick then ", --quick" else "");
  let t_start = Unix.gettimeofday () in
  let profile = Option.map (fun _ -> Ims_obs.Profile.create ()) opts.profile_file in
  let status =
    Option.map
      (fun file ->
        Ims_obs.Status.writer ~interval:opts.status_interval ~file
          ~timer:Unix.gettimeofday ())
      opts.status_file
  in
  let last_counts = ref (Ims_obs.Status.zero ~total:0) in
  let progress =
    Option.map
      (fun w counts ->
        last_counts := counts;
        Ims_obs.Status.heartbeat w
          {
            Ims_obs.Status.phase = "measure (table 3)";
            counts;
            elapsed = Unix.gettimeofday () -. t_start;
          })
      status
  in
  figure1 ();
  table1 ();
  table2 ();
  let cases =
    timed "suite.generate" (fun () ->
        Suite.cases ~machine ~count:suite_count ~jobs ())
  in
  let records =
    timed "measure (table 3)" (fun () -> measure_records ?profile ?progress cases)
  in
  Option.iter (fun file -> dump_metrics file records) metrics_file;
  table3 records;
  headline records;
  timed "figure 6 sweep" (fun () -> figure6 cases);
  timed "table 4 fits" (fun () -> table4 cases);
  section "ABLATIONS — design choices called out in DESIGN.md";
  ablation_priorities cases;
  ablation_recmii cases;
  ablation_delay_model ();
  ablation_evr ();
  ablation_code_schemas cases;
  section "EXTENSIONS — beyond the paper's evaluation";
  extension_fractional_mii cases;
  extension_schedulers cases;
  extension_cross_machine ();
  extension_speculation ();
  extension_semantics cases;
  extension_exit_schemas ();
  extension_register_pressure ();
  extension_kernel_family ();
  if not quick then bechamel ();
  fleet_phase ();
  (match (opts.profile_file, profile) with
  | Some file, Some p ->
      (* The bench's own phase wall clock joins the per-job spans, so
         one profile answers both "where did the run's time go" and
         "what did the jobs do". *)
      List.iter
        (fun (name, dt) -> Ims_obs.Profile.add_phase p name ~count:1 ~seconds:dt)
        (List.rev !phase_log);
      write_file file (Ims_obs.Json.to_string (Ims_obs.Profile.to_json p));
      Ims_obs.Log.info log "run profile written to %s" file
  | _ -> ());
  let snapshot = bench_snapshot_json records in
  Option.iter (fun file -> dump_bench_json file snapshot) bench_json_file;
  Option.iter
    (fun w ->
      Ims_obs.Status.finish w
        {
          Ims_obs.Status.phase = "done";
          counts = !last_counts;
          elapsed = Unix.gettimeofday () -. t_start;
        })
    status;
  Option.iter (fun file -> check_baseline file snapshot) opts.baseline;
  section "DONE"

(* Journal/resume errors are reported via [failwith] with a "bench: "
   prefix; render them as one line and exit 1 rather than letting the
   exception escape as a Fatal error with an escaped payload. *)
let () =
  try main () with Failure msg ->
    prerr_endline msg;
    exit 1
